#include "common/aligned_buffer.h"

#include <cstdlib>
#include <cstring>
#include <new>

namespace pdx {

namespace {

float* AllocateAligned(size_t count) {
  if (count == 0) return nullptr;
  // Round the byte size up to a multiple of the alignment: required by
  // std::aligned_alloc and convenient for whole-register tail loads.
  size_t bytes = count * sizeof(float);
  bytes = (bytes + kPdxAlignment - 1) / kPdxAlignment * kPdxAlignment;
  void* ptr = std::aligned_alloc(kPdxAlignment, bytes);
  if (ptr == nullptr) throw std::bad_alloc();
  std::memset(ptr, 0, bytes);
  return static_cast<float*>(ptr);
}

}  // namespace

AlignedBuffer::AlignedBuffer(size_t count)
    : data_(AllocateAligned(count)), size_(count) {}

AlignedBuffer::~AlignedBuffer() { Free(); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    Free();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

AlignedBuffer AlignedBuffer::Clone() const {
  AlignedBuffer copy(size_);
  if (size_ > 0) std::memcpy(copy.data_, data_, size_ * sizeof(float));
  return copy;
}

void AlignedBuffer::Reset(size_t count) {
  Free();
  data_ = AllocateAligned(count);
  size_ = count;
}

void AlignedBuffer::Free() {
  std::free(data_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace pdx
