#include "common/status.h"

namespace pdx {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kUnsupported:
      return "Unsupported";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status::Code StatusCodeFromName(const std::string& name) {
  for (Status::Code code :
       {Status::Code::kOk, Status::Code::kInvalidArgument,
        Status::Code::kIoError, Status::Code::kNotFound,
        Status::Code::kCorruption, Status::Code::kUnsupported,
        Status::Code::kResourceExhausted, Status::Code::kDeadlineExceeded,
        Status::Code::kCancelled, Status::Code::kInternal}) {
    if (name == StatusCodeName(code)) return code;
  }
  return Status::Code::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pdx
