#include "common/status.h"

namespace pdx {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kUnsupported:
      return "Unsupported";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pdx
