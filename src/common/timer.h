#ifndef PDX_COMMON_TIMER_H_
#define PDX_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace pdx {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pdx

#endif  // PDX_COMMON_TIMER_H_
