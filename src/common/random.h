#ifndef PDX_COMMON_RANDOM_H_
#define PDX_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pdx {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// Every stochastic component in the library (k-means seeding, random
/// orthogonal projections, synthetic dataset generation) draws from an
/// explicitly seeded Rng so that tests and benchmarks are reproducible
/// bit-for-bit across runs. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; the same seed yields the same stream.
  explicit Rng(uint64_t seed = 42);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  /// Next raw 64-bit draw.
  uint64_t operator()();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Standard normal draw (Box-Muller; internally caches the pair).
  double Gaussian();

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(values[i - 1], values[j]);
    }
  }

  /// `count` distinct indices sampled uniformly from [0, bound).
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t bound,
                                                 uint32_t count);

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace pdx

#endif  // PDX_COMMON_RANDOM_H_
