#ifndef PDX_COMMON_ALIGNED_BUFFER_H_
#define PDX_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/types.h"

namespace pdx {

/// Owning, move-only float buffer aligned to kPdxAlignment (64 bytes).
///
/// Vector data is kept 64-byte aligned so that both AVX-512 loads and full
/// cache-line prefetches operate on natural boundaries. The buffer value-
/// initializes its contents (all zeros) — PDX blocks rely on zero padding in
/// the tail lanes of a partially filled block.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  /// Allocates `count` zero-initialized floats.
  explicit AlignedBuffer(size_t count);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Copies the contents into a new, independently owned buffer.
  AlignedBuffer Clone() const;

  float* data() { return data_; }
  const float* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  float& operator[](size_t i) { return data_[i]; }
  const float& operator[](size_t i) const { return data_[i]; }

  float* begin() { return data_; }
  float* end() { return data_ + size_; }
  const float* begin() const { return data_; }
  const float* end() const { return data_ + size_; }

  /// Discards contents and reallocates to `count` zeroed floats.
  void Reset(size_t count);

 private:
  void Free();

  float* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace pdx

#endif  // PDX_COMMON_ALIGNED_BUFFER_H_
