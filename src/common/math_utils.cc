#include "common/math_utils.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdx {

float SquaredNorm(const float* values, size_t count) {
  float sum = 0.0f;
  for (size_t i = 0; i < count; ++i) sum += values[i] * values[i];
  return sum;
}

float Norm(const float* values, size_t count) {
  return std::sqrt(SquaredNorm(values, count));
}

double Mean(const std::vector<float>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (float v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<float>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum = 0.0;
  for (float v : values) {
    const double d = v - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(values.size());
}

double Percentile(std::vector<float> values, double p) {
  if (values.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    assert(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

size_t RoundUp(size_t value, size_t multiple) {
  assert(multiple > 0);
  return (value + multiple - 1) / multiple * multiple;
}

bool ApproxEqual(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

}  // namespace pdx
