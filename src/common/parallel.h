#ifndef PDX_COMMON_PARALLEL_H_
#define PDX_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace pdx {

/// Runs fn(i) for i in [0, count) across hardware threads.
///
/// Used only on *setup* paths (index construction, collection
/// transformation, ground-truth computation). Measured search code stays
/// single-threaded, matching the paper's methodology of deactivating
/// multi-threading in all benchmarks.
void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

}  // namespace pdx

#endif  // PDX_COMMON_PARALLEL_H_
