#ifndef PDX_COMMON_PARALLEL_H_
#define PDX_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pdx {

/// Upper bound on any thread-count knob (ThreadPool size,
/// SearcherConfig::threads, ServiceConfig::threads). A value above this is
/// almost certainly a unit mistake (microseconds, bytes); construction-time
/// validation rejects it and runtime setters clamp to it.
inline constexpr size_t kMaxPoolThreads = 256;

/// The one place the thread-count semantic lives, shared by ThreadPool,
/// Searcher::SearchBatch, ValidateSearcherConfig and the serving layer:
/// 0 = one thread per hardware thread (at least 1); anything else is taken
/// literally, clamped to kMaxPoolThreads. The returned count includes the
/// calling thread, so 1 means "fully sequential, spawn nothing".
size_t ResolveThreadCount(size_t num_threads);

/// A persistent pool of worker threads executing counted parallel loops.
///
/// Workers are spawned once and reused across ParallelFor calls, so the
/// per-call cost is a wakeup rather than thread creation — cheap enough to
/// sit on the query path (Searcher::SearchBatch) as well as on setup paths.
///
/// `num_threads` counts the *calling* thread too: a pool of size 1 spawns
/// nothing and runs every loop inline on the caller, byte-for-byte
/// identical to a sequential loop. This is the paper-methodology mode —
/// benchmarks that must stay single-threaded use threads = 1 and measure
/// exactly the code they measured before.
///
/// Several threads may call ParallelFor concurrently: in-flight loops run
/// side by side, sharing the spawned workers (the serving layer's N
/// dispatchers each fan a batch out over the one shared pool). Each caller
/// participates only in its *own* loop, as worker 0; spawned workers
/// (ids 1..num_threads()-1) claim items from any in-flight loop, one item
/// at a time. Because a caller always drives its own loop, every loop
/// completes even when all workers are busy elsewhere.
class ThreadPool {
 public:
  /// `num_threads` = total threads including the caller, resolved through
  /// ResolveThreadCount (0 = one per hardware thread). A pool of size n
  /// spawns n-1 workers.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads a loop can run on (spawned workers + the caller).
  size_t num_threads() const { return workers_.size() + 1; }

  /// True when the pool spawned no workers: every loop runs inline on the
  /// caller, byte-for-byte a sequential loop.
  bool is_sequential() const { return workers_.empty(); }

  /// Process-wide count of ThreadPool constructions. Serving code shares
  /// one pool across searchers; tests snapshot this before a query burst
  /// and assert it did not move — proof no pool was built on the query
  /// path.
  static uint64_t num_created();

  /// Runs fn(item, worker) for item in [0, count); `worker` is a dense id
  /// in [0, num_threads()), stable within one call — per-worker scratch
  /// (e.g. one PdxearchEngine each) can be indexed by it. The caller
  /// participates as worker 0 and returns as soon as every item is done
  /// (not when every woken worker has gone idle again). Exceptions thrown
  /// by `fn` are rethrown on the caller (first one wins). Re-entrant calls
  /// from inside this pool's own job on the same thread — directly, or
  /// sandwiched through another pool — run inline under the enclosing
  /// job's worker id, so scratch indexed by worker id stays race-free
  /// across nesting, and no deadlock occurs.
  ///
  /// Concurrent calls from distinct threads are supported and their loops
  /// run side by side. Worker-id exclusivity then has one caveat: a
  /// spawned worker's id is exclusive to its OS thread at all times, but
  /// EVERY concurrent caller runs as worker 0 of its own loop. Code that
  /// indexes scratch on one shared object by worker id must therefore
  /// either guarantee a single concurrent caller per object (the facade's
  /// single-querier SearchBatch contract) or partition the scratch per
  /// caller (the serving layer's per-dispatcher slot bands over
  /// SearchBatchWith).
  void ParallelFor(size_t count,
                   const std::function<void(size_t, size_t)>& fn);

  /// Process-wide pool sized to the hardware, used by the free ParallelFor
  /// below. Constructed on first use.
  static ThreadPool& Shared();

 private:
  // One parallel loop's shared state. Heap-allocated and held via
  // shared_ptr so a worker that wakes late (after the caller has already
  // returned, possibly after a newer job was submitted) still holds a
  // consistent {fn, count, next} triple: it finds `next` exhausted and
  // leaves, instead of racing a newer job's counters.
  struct Job {
    const std::function<void(size_t, size_t)>* fn = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};  ///< Next item to claim.
    std::atomic<size_t> done{0};  ///< Items fully processed.
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void WorkerMain(size_t worker_id);
  // Caller/worker loop: claim items until `job` is exhausted.
  void RunJob(Job& job, size_t worker_id);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_cv_;  // generation_ bumped or stopping_.
  std::condition_variable done_cv_;  // some job's done reached its count.
  uint64_t generation_ = 0;
  bool stopping_ = false;
  // Every loop currently in flight, oldest first. Each caller appends its
  // own job, drives it as worker 0, and removes it once done; spawned
  // workers claim items from whichever active job still has some.
  std::vector<std::shared_ptr<Job>> active_jobs_;
};

/// Runs fn(i) for i in [0, count) across hardware threads, on the shared
/// pool. Used on *setup* paths (index construction, collection
/// transformation, ground-truth computation). Measured search code stays
/// single-threaded unless it opts into a pool explicitly, matching the
/// paper's methodology of deactivating multi-threading in benchmarks.
void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

}  // namespace pdx

#endif  // PDX_COMMON_PARALLEL_H_
