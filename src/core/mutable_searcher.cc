#include "core/mutable_searcher.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "core/persist.h"
#include "index/topk.h"
#include "kernels/kernel_dispatch.h"
#include "storage/collection_format.h"

namespace pdx {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<std::unique_ptr<MutableSearcher>> MutableSearcher::Make(
    const VectorSet& vectors, SearcherConfig config, MutationConfig mutation,
    ShardingOptions sharding) {
  if (vectors.count() >= kInvalidVectorId) {
    return Status::InvalidArgument(
        "MutableSearcher: collection size exceeds the VectorId slot space");
  }
  // Resolved here so the facade's config (what Save persists) carries the
  // concrete block/order values, not "default" markers.
  config = ResolveConfig(std::move(config));
  auto built = sharding.num_shards > 1
                   ? MakeShardedSearcher(vectors, config, sharding)
                   : MakeSearcher(vectors, config);
  if (!built.ok()) return built.status();
  return std::unique_ptr<MutableSearcher>(
      new MutableSearcher(std::move(config), mutation, sharding,
                          std::move(built).value(), vectors.Clone()));
}

Result<std::unique_ptr<MutableSearcher>> MutableSearcher::Restore(
    std::shared_ptr<const CollectionImage> image, SearcherConfig config,
    MutationConfig mutation, ShardingOptions sharding) {
  const SavedMeta& meta = image->meta();
  auto decoded = DecodeMutable(*image);
  if (!decoded.ok()) return decoded.status();
  MutableImage mut = std::move(decoded).value();
  if (mut.raw_count != meta.count || mut.raw_dim != meta.dim) {
    return Status::Corruption(
        "mutable restore: raw-row section shape does not match the "
        "collection meta");
  }
  if (mut.delta_count > 0 && mut.delta_dim != meta.dim) {
    return Status::Corruption(
        "mutable restore: delta-row dimensionality does not match the "
        "collection meta");
  }

  // The base restores exactly like an immutable collection: zero-copy
  // views over the image, no k-means, no packing.
  auto inner = meta.num_shards > 1
                   ? MakeShardedSearcherFromImage(image, config, sharding)
                   : MakeSearcherFromImage(image, 0, config);
  if (!inner.ok()) return inner.status();

  // Compaction re-reads base rows, so the facade needs an owned horizontal
  // copy (the image may be dropped by a later compaction swap).
  VectorSet base_rows =
      VectorSet::FromRowMajor(mut.raw_rows, mut.raw_count, mut.raw_dim);
  std::unique_ptr<MutableSearcher> live(
      new MutableSearcher(std::move(config), mutation, sharding,
                          std::move(inner).value(), std::move(base_rows)));

  // Replay the delta over the ctor's base-only state. Slots are assigned
  // densely on append (slot i of the delta is base_count + i — Compact
  // preserves this); a snapshot violating it was not written by Save.
  for (size_t i = 0; i < mut.delta_count; ++i) {
    const size_t slot = live->base_count_ + i;
    if (mut.delta_slots[i] != slot) {
      return Status::Corruption(
          "mutable restore: delta slot ids are not dense over the base");
    }
    live->delta_.Append(mut.delta_rows + i * mut.delta_dim,
                        static_cast<VectorId>(slot));
  }

  // The saved id maps and tombstones replace the ctor's identity maps
  // wholesale; the derived counts and the live-id index are recomputed.
  live->slot_ids_ = std::move(mut.slot_ids);
  live->dead_ = std::move(mut.dead);
  live->base_dead_ = 0;
  live->delta_dead_ = 0;
  live->id_to_slot_.clear();
  live->id_to_slot_.reserve(live->slot_ids_.size());
  for (size_t slot = 0; slot < live->slot_ids_.size(); ++slot) {
    if (live->dead_[slot]) {
      if (slot < live->base_count_) {
        ++live->base_dead_;
      } else {
        ++live->delta_dead_;
      }
    } else {
      live->id_to_slot_[live->slot_ids_[slot]] = slot;
    }
  }
  live->next_auto_id_ = meta.next_auto_id;
  live->compactions_ = meta.compactions;
  live->PinImage(std::move(image));
  return live;
}

MutableSearcher::MutableSearcher(SearcherConfig config,
                                 MutationConfig mutation,
                                 ShardingOptions sharding,
                                 std::unique_ptr<Searcher> inner,
                                 VectorSet base_rows)
    : Searcher(std::move(config)),
      mutation_(mutation),
      sharding_(sharding),
      inner_(std::move(inner)),
      base_rows_(std::move(base_rows)) {
  base_count_ = base_rows_.count();
  dim_ = base_rows_.dim();
  delta_ = DeltaStore(dim_, mutation_.delta_block_capacity);
  slot_ids_.resize(base_count_);
  dead_.assign(base_count_, 0);
  id_to_slot_.reserve(base_count_);
  for (size_t slot = 0; slot < base_count_; ++slot) {
    slot_ids_[slot] = slot;
    id_to_slot_.emplace(slot, slot);
  }
  next_auto_id_ = base_count_;
}

// -- Mutation surface -------------------------------------------------------

Status MutableSearcher::ValidateAddLocked(const float* rows, size_t count,
                                          const uint64_t* ids) const {
  if (rows == nullptr) {
    return Status::InvalidArgument("Add: rows is null");
  }
  // Slots are stored as VectorId inside the delta blocks, so the slot space
  // is bounded by kInvalidVectorId regardless of the 64-bit external ids.
  if (slot_ids_.size() + count >= kInvalidVectorId) {
    return Status::ResourceExhausted(
        "Add: collection slot space exhausted (compact to reclaim "
        "tombstoned slots)");
  }
  if (ids != nullptr) {
    for (size_t r = 0; r < count; ++r) {
      if (ids[r] >= kInvalidVectorId) {
        return Status::InvalidArgument(
            "Add: id " + std::to_string(ids[r]) +
            " does not fit the VectorId result space (must be < " +
            std::to_string(kInvalidVectorId) + ")");
      }
    }
  } else if (next_auto_id_ + count >= kInvalidVectorId) {
    return Status::ResourceExhausted("Add: auto-id space exhausted");
  }
  return Status::OK();
}

void MutableSearcher::TombstoneLocked(size_t slot) {
  dead_[slot] = 1;
  if (slot < base_count_) {
    ++base_dead_;
  } else {
    ++delta_dead_;
  }
}

Result<std::vector<uint64_t>> MutableSearcher::Add(const float* rows,
                                                   size_t count,
                                                   const uint64_t* ids) {
  if (count == 0) return std::vector<uint64_t>{};
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  Status valid = ValidateAddLocked(rows, count, ids);
  if (!valid.ok()) return valid;
  std::vector<uint64_t> assigned;
  assigned.reserve(count);
  for (size_t r = 0; r < count; ++r) {
    const uint64_t id = ids != nullptr ? ids[r] : next_auto_id_;
    auto it = id_to_slot_.find(id);
    if (it != id_to_slot_.end()) {
      // Upsert: the old vector dies, the row below inherits the id.
      TombstoneLocked(it->second);
    }
    const size_t slot = slot_ids_.size();
    delta_.Append(rows + r * dim_, static_cast<VectorId>(slot));
    slot_ids_.push_back(id);
    dead_.push_back(0);
    id_to_slot_[id] = slot;
    if (id >= next_auto_id_) next_auto_id_ = id + 1;
    assigned.push_back(id);
  }
  return assigned;
}

Status MutableSearcher::Delete(uint64_t id) {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) {
    return Status::NotFound("Delete: no vector with id " + std::to_string(id));
  }
  TombstoneLocked(it->second);
  id_to_slot_.erase(it);
  return Status::OK();
}

size_t MutableSearcher::DeleteBatch(const uint64_t* ids, size_t count,
                                    std::vector<uint64_t>* missing) {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  size_t deleted = 0;
  for (size_t r = 0; r < count; ++r) {
    auto it = id_to_slot_.find(ids[r]);
    if (it == id_to_slot_.end()) {
      if (missing != nullptr) missing->push_back(ids[r]);
      continue;
    }
    TombstoneLocked(it->second);
    id_to_slot_.erase(it);
    ++deleted;
  }
  return deleted;
}

bool MutableSearcher::NeedsCompaction() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  const size_t threshold = mutation_.compact_threshold;
  if (threshold == 0) return false;
  return delta_.count() >= threshold ||
         base_dead_ + delta_dead_ >= threshold;
}

Status MutableSearcher::Compact() {
  std::lock_guard<std::mutex> serialize(compact_mutex_);

  // Phase 1: snapshot the survivors under a shared lock — searches keep
  // flowing; mutations (exclusive) wait only for the copy, not the build.
  VectorSet survivors;
  std::vector<size_t> survivor_slots;
  size_t snapshot_slots = 0;
  SearcherConfig build_config;
  {
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    const size_t live = LiveCountLocked();
    if (live == 0) {
      // MakeSearcher rejects empty collections; tombstone filtering already
      // yields correct (empty) results, so there is nothing to fold.
      return Status::OK();
    }
    snapshot_slots = slot_ids_.size();
    survivors = VectorSet(dim_, live);
    survivor_slots.reserve(live);
    for (size_t slot = 0; slot < snapshot_slots; ++slot) {
      if (dead_[slot]) continue;
      survivors.Append(RowLocked(slot));
      survivor_slots.push_back(slot);
    }
    build_config = config_;
  }

  // Phase 2: the expensive rebuild (k-means, transforms, block packing),
  // with no lock held — dispatchers and mutators run undisturbed.
  auto built = sharding_.num_shards > 1
                   ? MakeShardedSearcher(survivors, build_config, sharding_)
                   : MakeSearcher(survivors, build_config);
  if (!built.ok()) return built.status();
  std::unique_ptr<Searcher> fresh = std::move(built).value();

  // Phase 3: swap under the exclusive lock, carrying over every mutation
  // that raced the build. Tombstones are monotone (a dead slot never
  // resurrects; upsert kills the old slot and appends a new one), so the
  // current dead_ flags are exactly "deleted before or during the build",
  // and slots >= snapshot_slots are exactly the rows appended during it.
  {
    std::unique_lock<std::shared_mutex> lock(state_mutex_);
    fresh->ReserveScratch(reserved_slots_);
    const size_t new_base = survivors.count();
    const size_t total_slots = slot_ids_.size();
    std::vector<uint64_t> new_slot_ids;
    std::vector<uint8_t> new_dead;
    new_slot_ids.reserve(new_base + (total_slots - snapshot_slots));
    new_dead.reserve(new_base + (total_slots - snapshot_slots));
    size_t new_base_dead = 0;
    for (size_t r = 0; r < new_base; ++r) {
      const size_t old_slot = survivor_slots[r];
      new_slot_ids.push_back(slot_ids_[old_slot]);
      new_dead.push_back(dead_[old_slot]);
      if (dead_[old_slot]) ++new_base_dead;
    }
    DeltaStore new_delta(dim_, delta_.block_capacity());
    size_t new_delta_dead = 0;
    for (size_t old_slot = snapshot_slots; old_slot < total_slots;
         ++old_slot) {
      const size_t new_slot = new_slot_ids.size();
      new_delta.Append(delta_.rows().Vector(old_slot - base_count_),
                       static_cast<VectorId>(new_slot));
      new_slot_ids.push_back(slot_ids_[old_slot]);
      new_dead.push_back(dead_[old_slot]);
      if (dead_[old_slot]) ++new_delta_dead;
    }
    std::unordered_map<uint64_t, size_t> new_map;
    new_map.reserve(new_slot_ids.size());
    for (size_t slot = 0; slot < new_slot_ids.size(); ++slot) {
      if (!new_dead[slot]) new_map.emplace(new_slot_ids[slot], slot);
    }
    inner_ = std::move(fresh);
    base_rows_ = std::move(survivors);
    base_count_ = new_base;
    delta_ = std::move(new_delta);
    slot_ids_ = std::move(new_slot_ids);
    dead_ = std::move(new_dead);
    id_to_slot_ = std::move(new_map);
    base_dead_ = new_base_dead;
    delta_dead_ = new_delta_dead;
    ++compactions_;
  }
  return Status::OK();
}

MutationStats MutableSearcher::mutation_stats() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  MutationStats stats;
  stats.live = LiveCountLocked();
  stats.base_rows = base_count_;
  stats.delta_rows = delta_.count();
  // For a sharded base this is the first shard's store — a per-shard view,
  // matching the facade's store() contract.
  stats.base_blocks = inner_->store().num_blocks();
  stats.delta_blocks = delta_.num_blocks();
  stats.tombstones = base_dead_ + delta_dead_;
  stats.compactions = compactions_;
  return stats;
}

// -- Persistence surface ----------------------------------------------------

Status MutableSearcher::ExportSavedLocked(SavedCollection& out) const {
  out = SavedCollection{};
  PDX_RETURN_IF_ERROR(inner_->ExportSaved(out));
  // Search() steers the inner searcher by mutating its knobs (set_k widens
  // k by the tombstone count), so the meta the inner export produced has
  // drifted. Keep only what the inner searcher alone knows — base count
  // and shard shape — and rewrite every config scalar from the facade's
  // own (undrifted) config.
  SavedMeta meta = MetaFromConfig(config_);
  meta.dim = dim_;
  meta.count = out.meta.count;
  meta.num_shards = out.meta.num_shards;
  meta.assignment = out.meta.assignment;
  meta.mutable_snapshot = 1;
  meta.delta_block_capacity =
      static_cast<uint32_t>(mutation_.delta_block_capacity);
  meta.compact_threshold = mutation_.compact_threshold;
  meta.next_auto_id = next_auto_id_;
  meta.compactions = compactions_;
  out.meta = meta;
  out.raw_rows = base_rows_.data();
  out.raw_row_count = base_count_;
  out.delta_rows = delta_.rows().data();
  out.delta_row_count = delta_.count();
  out.delta_slots.reserve(delta_.count());
  for (size_t i = 0; i < delta_.count(); ++i) {
    out.delta_slots.push_back(delta_.slot(i));
  }
  out.slot_ids = slot_ids_;
  out.dead = dead_;
  return Status::OK();
}

Status MutableSearcher::ExportSaved(SavedCollection& out) const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return ExportSavedLocked(out);
}

Status MutableSearcher::Save(const std::string& path) const {
  // The export borrows pointers into the live arenas, so the lock spans
  // the disk write too: searches proceed, mutations wait for the flush.
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  SavedCollection saved;
  PDX_RETURN_IF_ERROR(ExportSavedLocked(saved));
  return WriteCollectionFile(path, saved);
}

// -- Search surface ---------------------------------------------------------

std::vector<Neighbor> MutableSearcher::MergeLocked(
    std::vector<Neighbor> base, const float* query, size_t k,
    SearchCounters* counters) const {
  if (delta_.empty() && base_dead_ == 0) {
    // Nothing to merge or filter: remap base slots to external ids in
    // place. This keeps the unmutated serving path allocation-free beyond
    // what the base searcher itself does.
    for (Neighbor& n : base) {
      n.id = static_cast<VectorId>(slot_ids_[n.id]);
    }
    return base;
  }
  TopK heap(std::max<size_t>(1, k));
  for (const Neighbor& n : base) {
    if (!dead_[n.id]) heap.Push(n.id, n.distance);
  }
  if (!delta_.empty()) {
    const KernelTable& kernels = ActiveKernels();
    std::vector<float> distances(delta_.block_capacity());
    for (size_t b = 0; b < delta_.num_blocks(); ++b) {
      const PdxBlock& block = delta_.block(b);
      // The dispatched vertical kernel accumulates per lane in ascending
      // dimension order — the same addition sequence the base engines run —
      // so a vector's distance is bit-identical on either side of the
      // base/delta boundary (the parity tests pin this).
      kernels.pdx_linear_scan(config_.metric, query, block.data(),
                              block.count(), dim_, distances.data());
      for (size_t i = 0; i < block.count(); ++i) {
        const VectorId slot = block.id(i);
        if (!dead_[slot]) heap.Push(slot, distances[i]);
      }
      if (counters != nullptr) {
        ++counters->blocks_visited;
        counters->values_scanned +=
            static_cast<uint64_t>(block.count()) * dim_;
        counters->dims_scanned += dim_;
      }
    }
  }
  std::vector<Neighbor> merged = heap.SortedResults();
  for (Neighbor& n : merged) {
    n.id = static_cast<VectorId>(slot_ids_[n.id]);
  }
  return merged;
}

std::vector<Neighbor> MutableSearcher::Search(const float* query) {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  profile_ = PdxearchProfile{};
  if (LiveCountLocked() == 0) return {};
  // Widen k by the base tombstone count so at least k live base candidates
  // survive the filter (at most base_dead_ dead ones can outrank a live
  // vector).
  inner_->set_k(std::max<size_t>(1, config_.k + base_dead_));
  std::vector<Neighbor> base = inner_->Search(query);
  profile_ = inner_->last_profile();
  SearchCounters delta_work;
  std::vector<Neighbor> merged =
      MergeLocked(std::move(base), query, config_.k, &delta_work);
  profile_.blocks_visited += delta_work.blocks_visited;
  profile_.values_scanned += delta_work.values_scanned;
  profile_.values_total += delta_work.values_scanned;
  profile_.dims_scanned += delta_work.dims_scanned;
  return merged;
}

std::vector<std::vector<Neighbor>> MutableSearcher::SearchBatch(
    const float* queries, size_t num_queries) {
  batch_profile_ = BatchProfile{};
  batch_profile_.queries = num_queries;
  std::vector<std::vector<Neighbor>> results(num_queries);
  const auto batch_start = std::chrono::steady_clock::now();
  for (size_t q = 0; q < num_queries; ++q) {
    const auto query_start = std::chrono::steady_clock::now();
    results[q] = Search(queries + q * dim_);
    batch_profile_.latency.Record(MsSince(query_start));
    batch_profile_.Accumulate(profile_);
  }
  batch_profile_.wall_ms = MsSince(batch_start);
  return results;
}

std::vector<Neighbor> MutableSearcher::SearchWith(size_t slot,
                                                  QueryKnobs knobs,
                                                  const float* query,
                                                  PdxearchProfile* profile) {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  const size_t k = knobs.k > 0 ? knobs.k : config_.k;
  if (profile != nullptr) *profile = PdxearchProfile{};
  if (LiveCountLocked() == 0) return {};
  QueryKnobs base_knobs;
  base_knobs.k = k + base_dead_;
  base_knobs.nprobe = knobs.nprobe;
  std::vector<Neighbor> base =
      inner_->SearchWith(slot, base_knobs, query, profile);
  SearchCounters delta_work;
  std::vector<Neighbor> merged =
      MergeLocked(std::move(base), query, k, &delta_work);
  if (profile != nullptr) {
    profile->blocks_visited += delta_work.blocks_visited;
    profile->values_scanned += delta_work.values_scanned;
    profile->values_total += delta_work.values_scanned;
    profile->dims_scanned += delta_work.dims_scanned;
  }
  return merged;
}

std::vector<std::vector<Neighbor>> MutableSearcher::SearchBatchWith(
    size_t slot, QueryKnobs knobs, const float* queries, size_t num_queries,
    BatchProfile* profile, SearchCounters* counters) {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  const size_t k = knobs.k > 0 ? knobs.k : config_.k;
  if (LiveCountLocked() == 0) {
    if (profile != nullptr) *profile = BatchProfile{};
    if (counters != nullptr) {
      std::fill_n(counters, num_queries, SearchCounters{});
    }
    return std::vector<std::vector<Neighbor>>(num_queries);
  }
  QueryKnobs base_knobs;
  base_knobs.k = k + base_dead_;
  base_knobs.nprobe = knobs.nprobe;
  std::vector<std::vector<Neighbor>> results = inner_->SearchBatchWith(
      slot, base_knobs, queries, num_queries, profile, counters);
  if (delta_.empty() && base_dead_ == 0) {
    for (std::vector<Neighbor>& list : results) {
      for (Neighbor& n : list) {
        n.id = static_cast<VectorId>(slot_ids_[n.id]);
      }
    }
    return results;
  }
  for (size_t q = 0; q < num_queries; ++q) {
    results[q] =
        MergeLocked(std::move(results[q]), queries + q * dim_, k,
                    counters != nullptr ? &counters[q] : nullptr);
  }
  return results;
}

void MutableSearcher::ReserveScratch(size_t slots) {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  reserved_slots_ = std::max(reserved_slots_, slots);
  inner_->ReserveScratch(slots);
}

const PdxStore& MutableSearcher::store() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return inner_->store();
}

const IvfIndex* MutableSearcher::index() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return inner_->index();
}

size_t MutableSearcher::count() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return LiveCountLocked();
}

size_t MutableSearcher::max_nprobe() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return inner_->max_nprobe();
}

size_t MutableSearcher::num_shards() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return inner_->num_shards();
}

std::vector<uint64_t> MutableSearcher::ShardDispatchCounts() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return inner_->ShardDispatchCounts();
}

}  // namespace pdx
