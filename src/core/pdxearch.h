#ifndef PDX_CORE_PDXEARCH_H_
#define PDX_CORE_PDXEARCH_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/timer.h"
#include "common/types.h"
#include "index/ivf.h"
#include "index/topk.h"
#include "kernels/kernel_dispatch.h"
#include "obs/search_counters.h"
#include "storage/pdx_store.h"

namespace pdx {

/// Tuning knobs of the PDXearch framework (Section 4).
struct PdxearchOptions {
  size_t k = 10;                     ///< Neighbors to return.
  Metric metric = Metric::kL2;       ///< Pruners typically require kL2.
  /// Fraction of not-yet-pruned vectors at which the search advances from
  /// WARMUP to PRUNE (Figure 10's sweet spot: ~20%).
  float selection_fraction = 0.20f;
  /// First WARMUP fetch size; subsequent fetches double (2, 4, 8, ...).
  size_t initial_step = 2;
  /// When false, fetch `fixed_step` dims every time (ADSampling's fixed
  /// Δd=32 — the Figure 7 ablation).
  bool adaptive_steps = true;
  size_t fixed_step = 32;
  /// Collect per-phase wall-clock times (Table 7). Off by default: the
  /// timer calls would distort micro-benchmarks.
  bool collect_phase_times = false;
  /// Optional per-step observer: (dims_scanned, survivors, block_count).
  /// Invoked with dims_scanned == 0 when a block enters WARMUP, after every
  /// pruning test, and once more at dims_scanned == dim before the final
  /// merge. Used to trace pruning curves (Tables 2 & 6); leave empty
  /// otherwise.
  std::function<void(size_t, size_t, size_t)> step_observer;
};

/// Per-query measurements: phase times (Table 7) and pruning power
/// (Tables 2 & 6: fraction of dimension values never touched).
struct PdxearchProfile {
  double preprocess_ms = 0.0;
  double find_buckets_ms = 0.0;
  double bounds_ms = 0.0;
  double distance_ms = 0.0;
  uint64_t values_scanned = 0;  ///< Dimension values used in kernels.
  uint64_t values_total = 0;    ///< D x (vectors in visited blocks).
  uint64_t predicate_evaluations = 0;
  uint64_t blocks_visited = 0;  ///< Blocks whose lanes were touched.
  uint64_t vectors_pruned = 0;  ///< Lanes broken off before full distance.
  /// Dimension steps walked, summed over blocks (== blocks * D with no
  /// pruning; less when whole blocks die early).
  uint64_t dims_scanned = 0;
  /// Candidates the u8 quantized tier re-ranked on exact distances (always
  /// 0 for the float-tier engines).
  uint64_t rerank_candidates = 0;

  double total_ms() const {
    return preprocess_ms + find_buckets_ms + bounds_ms + distance_ms;
  }
  /// Field-wise sum; keeps aggregation (batch profiles) next to the fields
  /// so a new counter can't be silently dropped from it.
  PdxearchProfile& operator+=(const PdxearchProfile& other) {
    preprocess_ms += other.preprocess_ms;
    find_buckets_ms += other.find_buckets_ms;
    bounds_ms += other.bounds_ms;
    distance_ms += other.distance_ms;
    values_scanned += other.values_scanned;
    values_total += other.values_total;
    predicate_evaluations += other.predicate_evaluations;
    blocks_visited += other.blocks_visited;
    vectors_pruned += other.vectors_pruned;
    dims_scanned += other.dims_scanned;
    rerank_candidates += other.rerank_candidates;
    return *this;
  }
  /// The profile's work counters in the serving layer's wire shape.
  SearchCounters counters() const {
    SearchCounters c;
    c.blocks_visited = blocks_visited;
    c.vectors_pruned = vectors_pruned;
    c.values_scanned = values_scanned;
    c.values_avoided =
        values_total > values_scanned ? values_total - values_scanned : 0;
    c.dims_scanned = dims_scanned;
    c.predicate_evaluations = predicate_evaluations;
    c.rerank_candidates = rerank_candidates;
    return c;
  }
  /// Pruning power: fraction of values avoided (0 when nothing visited).
  double pruning_power() const {
    return values_total == 0
               ? 0.0
               : 1.0 - double(values_scanned) / double(values_total);
  }
};

/// The "prune nothing" policy: PDXearch degenerates to a blockwise linear
/// scan (the PDX-LINEAR-SCAN competitor, and the baseline of Figure 10).
class NoPruner {
 public:
  struct QueryState {
    const float* query = nullptr;
  };
  QueryState PrepareQuery(const float* raw_query) const {
    return QueryState{raw_query};
  }
  const float* KernelQuery(const QueryState& qs) const { return qs.query; }
  bool has_visit_order() const { return false; }
  const std::vector<uint32_t>* VisitOrder(const QueryState&) const {
    return nullptr;
  }
  void BuildAux(const PdxStore&) {}
  size_t FilterSurvivors(const QueryState&, size_t, const float*, size_t,
                         float, uint32_t*, size_t count) const {
    return count;
  }
};

/// The PDXearch framework (Section 4): dimension-by-dimension, block-by-
/// block pruned search over a PdxStore, parameterized by a pruner policy.
///
/// Per block the search runs three phases:
///   START  — first block(s) while the k-NN heap is not yet full: plain
///            linear scan to seed the pruning threshold.
///   WARMUP — fetch dimensions at (exponentially) increasing steps for ALL
///            vectors, evaluating the pruning predicate after each step but
///            not yet skipping pruned lanes (skipping few lanes costs more
///            in random access than it saves).
///   PRUNE  — once survivors drop below `selection_fraction`, compact the
///            survivor positions and compute only those lanes.
///
/// The framework never changes *what* the pruner's predicate accepts — only
/// how many dimensions are fetched per step and when computation is broken
/// off — so the underlying algorithm's exactness/recall is preserved.
///
/// The Pruner policy must provide:
///   struct QueryState;
///   QueryState PrepareQuery(const float* raw_query) const;
///   const float* KernelQuery(const QueryState&) const;
///   bool has_visit_order() const;
///   const std::vector<uint32_t>* VisitOrder(const QueryState&) const;
///   void BuildAux(const PdxStore&);
///   size_t FilterSurvivors(const QueryState&, size_t block_index,
///                          const float* distances, size_t dims_scanned,
///                          float threshold, uint32_t* positions,
///                          size_t count) const;
template <typename Pruner>
class PdxearchEngine {
 public:
  /// `store` and `pruner` must outlive the engine. The pruner's BuildAux
  /// must already have been called with `store` where applicable.
  PdxearchEngine(const PdxStore* store, const Pruner* pruner,
                 PdxearchOptions options)
      : store_(store),
        pruner_(pruner),
        options_(std::move(options)),
        kernels_(ActiveKernels()) {
    size_t max_lanes = kPdxBlockSize;
    for (size_t b = 0; b < store_->num_blocks(); ++b) {
      max_lanes = std::max(max_lanes, store_->block(b).count());
    }
    distances_.Reset(max_lanes);
    positions_.resize(max_lanes);
  }

  const PdxearchOptions& options() const { return options_; }
  PdxearchOptions& mutable_options() { return options_; }

  /// Exact/flat search: visits every block in store order.
  std::vector<Neighbor> SearchFlat(const float* raw_query) {
    profile_ = PdxearchProfile{};
    Timer timer;
    typename Pruner::QueryState qs = pruner_->PrepareQuery(raw_query);
    if (options_.collect_phase_times) {
      profile_.preprocess_ms = timer.ElapsedMillis();
    }
    TopK heap(options_.k);
    for (size_t b = 0; b < store_->num_blocks(); ++b) {
      SearchBlock(qs, b, heap);
    }
    return heap.SortedResults();
  }

  /// IVF search: ranks buckets by centroid distance (on the index's PDX
  /// centroid store), then runs PDXearch over the `nprobe` nearest buckets'
  /// blocks. `index` must be the index the store was grouped by.
  std::vector<Neighbor> SearchIvf(const IvfIndex& index,
                                  const float* raw_query, size_t nprobe) {
    profile_ = PdxearchProfile{};
    Timer timer;
    typename Pruner::QueryState qs = pruner_->PrepareQuery(raw_query);
    if (options_.collect_phase_times) {
      profile_.preprocess_ms = timer.ElapsedMillis();
      timer.Reset();
    }
    const std::vector<uint32_t> ranked = index.RankBuckets(raw_query);
    if (options_.collect_phase_times) {
      profile_.find_buckets_ms = timer.ElapsedMillis();
    }
    const size_t probes = std::min(nprobe, ranked.size());
    TopK heap(options_.k);
    for (size_t r = 0; r < probes; ++r) {
      const auto [first, last] = store_->GroupBlockRange(ranked[r]);
      for (size_t b = first; b < last; ++b) {
        SearchBlock(qs, b, heap);
      }
    }
    return heap.SortedResults();
  }

  /// Measurements of the most recent Search* call.
  const PdxearchProfile& last_profile() const { return profile_; }

 private:
  // Searches one block, updating the heap.
  void SearchBlock(const typename Pruner::QueryState& qs, size_t block_index,
                   TopK& heap) {
    const PdxBlock& block = store_->block(block_index);
    const size_t n = block.count();
    const size_t dim = block.dim();
    if (n == 0) return;
    const float* query = pruner_->KernelQuery(qs);
    const std::vector<uint32_t>* order = pruner_->VisitOrder(qs);
    float* distances = distances_.data();
    profile_.values_total += uint64_t(n) * dim;
    ++profile_.blocks_visited;

    Timer timer;
    const bool timed = options_.collect_phase_times;

    // START: no threshold yet -> linear scan, merge everything.
    if (!heap.full()) {
      if (timed) timer.Reset();
      if (order != nullptr) {
        std::fill(distances, distances + n, 0.0f);
        kernels_.pdx_accumulate_dims(options_.metric, query, block.data(), n,
                                     order->data(), dim, distances);
      } else {
        kernels_.pdx_linear_scan(options_.metric, query, block.data(), n, dim,
                                 distances);
      }
      profile_.values_scanned += uint64_t(n) * dim;
      profile_.dims_scanned += dim;
      for (size_t i = 0; i < n; ++i) heap.Push(block.id(i), distances[i]);
      if (timed) profile_.distance_ms += timer.ElapsedMillis();
      return;
    }

    // WARMUP / PRUNE.
    std::fill(distances, distances + n, 0.0f);
    uint32_t* positions = positions_.data();
    std::iota(positions, positions + n, 0u);
    size_t alive = n;
    if (options_.step_observer) options_.step_observer(0, n, n);
    size_t dims_done = 0;
    size_t next_step = options_.adaptive_steps ? options_.initial_step
                                               : options_.fixed_step;
    // Clamped to [0, n-1]: selection_fraction >= 1.0 would otherwise put
    // every block straight into PRUNE (positions-gather kernels for all
    // lanes), and an n == 1 block would enter PRUNE before its single lane
    // was ever tested. prune_entry == 0 (only possible when n == 1) means
    // the block completes in WARMUP.
    const size_t prune_entry = std::min<size_t>(
        n - 1, std::max<size_t>(
                   1, static_cast<size_t>(options_.selection_fraction *
                                          static_cast<float>(n))));
    bool pruning_phase = false;

    while (dims_done < dim && alive > 0) {
      const size_t step = std::min(next_step, dim - dims_done);

      if (timed) timer.Reset();
      if (!pruning_phase) {
        // WARMUP: all lanes.
        if (order != nullptr) {
          kernels_.pdx_accumulate_dims(options_.metric, query, block.data(),
                                       n, order->data() + dims_done, step,
                                       distances);
        } else {
          kernels_.pdx_accumulate(options_.metric, query, block.data(), n,
                                  dims_done, dims_done + step, distances);
        }
        profile_.values_scanned += uint64_t(n) * step;
      } else {
        // PRUNE: survivors only.
        if (order != nullptr) {
          kernels_.pdx_accumulate_dims_positions(
              options_.metric, query, block.data(), n,
              order->data() + dims_done, step, positions, alive, distances);
        } else {
          kernels_.pdx_accumulate_positions(
              options_.metric, query, block.data(), n, dims_done,
              dims_done + step, positions, alive, distances);
        }
        profile_.values_scanned += uint64_t(alive) * step;
      }
      if (timed) profile_.distance_ms += timer.ElapsedMillis();

      dims_done += step;
      if (options_.adaptive_steps) next_step *= 2;

      if (dims_done >= dim) break;  // Full distances: no test needed.

      if (timed) timer.Reset();
      alive = pruner_->FilterSurvivors(qs, block_index, distances, dims_done,
                                       heap.threshold(), positions, alive);
      ++profile_.predicate_evaluations;
      if (timed) profile_.bounds_ms += timer.ElapsedMillis();

      if (options_.step_observer) {
        options_.step_observer(dims_done, alive, n);
      }
      if (!pruning_phase && alive <= prune_entry) pruning_phase = true;
    }

    if (options_.step_observer) options_.step_observer(dim, alive, n);
    profile_.dims_scanned += dims_done;
    profile_.vectors_pruned += n - alive;

    // Merge survivors (their distances are complete).
    if (timed) timer.Reset();
    for (size_t p = 0; p < alive; ++p) {
      const uint32_t lane = positions[p];
      heap.Push(block.id(lane), distances[lane]);
    }
    if (timed) profile_.distance_ms += timer.ElapsedMillis();
  }

  const PdxStore* store_;
  const Pruner* pruner_;
  PdxearchOptions options_;
  /// The runtime-dispatched kernel tier, resolved once at engine creation
  /// so the block loop pays one indirect call per kernel, not a dispatch.
  const KernelTable& kernels_;
  AlignedBuffer distances_;
  std::vector<uint32_t> positions_;
  PdxearchProfile profile_;
};

}  // namespace pdx

#endif  // PDX_CORE_PDXEARCH_H_
