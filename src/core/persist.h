#ifndef PDX_CORE_PERSIST_H_
#define PDX_CORE_PERSIST_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/any_searcher.h"
#include "core/mutable_searcher.h"
#include "core/sharded_searcher.h"
#include "storage/collection_format.h"

namespace pdx {

/// Serializes the *resolved* config into the fixed on-disk metadata
/// (storage/collection_format.h). dim/count/num_shards/assignment and the
/// mutable-snapshot fields are the exporter's to fill.
SavedMeta MetaFromConfig(const SearcherConfig& config);

/// Decodes saved metadata back into the (config, sharding, mutation)
/// triple it was serialized from. Enum fields are validated — a corrupt or
/// hand-edited file fails here with a clean Status instead of driving a
/// switch off its rails. `sharding`/`mutation` may be null when the caller
/// only needs the searcher config.
Status ConfigFromMeta(const SavedMeta& meta, SearcherConfig* config,
                      ShardingOptions* sharding, MutationConfig* mutation);

/// Restores one unsharded searcher from shard `shard`'s sections of
/// `image`: the PDX stores become zero-copy views into the image (which
/// the searcher pins), pruner transforms are reloaded rather than
/// re-derived, and neither k-means nor block packing runs — the
/// persistence tests pin both counters at zero across this call. `config`
/// must be the resolved config decoded from the image's meta.
Result<std::unique_ptr<Searcher>> MakeSearcherFromImage(
    std::shared_ptr<const CollectionImage> image, uint32_t shard,
    SearcherConfig config);

/// Sharded restore: one image-backed searcher per shard (units 2s / 2s+1)
/// behind the scatter-gather facade. Shard maps are recomputed from
/// (count, num_shards, assignment) — the assignment is deterministic, so
/// the recomputed maps are identical to the saved searcher's and merged
/// results match byte for byte.
Result<std::unique_ptr<Searcher>> MakeShardedSearcherFromImage(
    std::shared_ptr<const CollectionImage> image, SearcherConfig config,
    ShardingOptions sharding);

/// A collection restored from disk plus everything the serving layer
/// reports about the restore.
struct LoadedCollection {
  std::unique_ptr<Searcher> searcher;
  /// Non-null when the file was a mutable snapshot: the same object as
  /// `searcher`, typed for the Add/Delete/Compact surface.
  MutableSearcher* live = nullptr;
  SearcherConfig config;    ///< Resolved config decoded from the meta.
  ShardingOptions sharding;
  MutationConfig mutation;
  std::string source;       ///< "mmap" or "loaded" (heap fallback).
  uint64_t mapped_bytes = 0;
  uint64_t file_bytes = 0;
};

struct LoadOptions {
  /// false forces the heap-copy fallback (tests exercise both sources).
  bool allow_mmap = true;
};

/// Loads, validates, and reconstructs the collection saved at `path`,
/// dispatching on the meta: mutable snapshot -> MutableSearcher::Restore,
/// num_shards > 1 -> sharded, else plain. The expensive part is the
/// validation pass over the file; construction itself is view-building.
Result<LoadedCollection> LoadCollection(const std::string& path,
                                        LoadOptions options = {});

/// Same, over an already-loaded image (callers that pre-validate or share
/// one image across replicas).
Result<LoadedCollection> LoadCollectionFromImage(
    std::shared_ptr<const CollectionImage> image);

}  // namespace pdx

#endif  // PDX_CORE_PERSIST_H_
