#ifndef PDX_CORE_ANY_SEARCHER_H_
#define PDX_CORE_ANY_SEARCHER_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "benchlib/latency.h"
#include "common/parallel.h"
#include "common/status.h"
#include "common/types.h"
#include "core/pdxearch.h"
#include "index/ivf.h"
#include "pruning/bond.h"
#include "storage/pdx_store.h"
#include "storage/vector_set.h"

namespace pdx {

struct SavedCollection;  // storage/collection_format.h

/// How the collection is blocked and visited (Sections 4.2/6.5).
enum class SearcherLayout : uint8_t {
  kFlat = 0,  ///< Horizontal partitions, every block visited (exact search).
  kIvf = 1,   ///< IVF buckets as block groups, `nprobe` buckets visited.
};

/// Which distance-computation pruner PDXearch runs with (Sections 3 & 5).
enum class PrunerKind : uint8_t {
  kLinear = 0,      ///< No pruning: blockwise linear scan.
  kAdsampling = 1,  ///< ADSampling: random rotation + hypothesis test.
  kBsa = 2,         ///< BSA: PCA projection + learned error bounds.
  kBond = 3,        ///< PDX-BOND: exact partial-distance bound.
};

/// Optional scalar quantization of the served store (the paper's Section 7
/// "compressed representations of dimensions within blocks" follow-up).
enum class QuantizationKind : uint8_t {
  kNone = 0,  ///< Full-precision float PDX blocks.
  kU8 = 1,    ///< Per-dimension affine u8 codes + exact rerank (quant/).
};

const char* SearcherLayoutName(SearcherLayout layout);
const char* PrunerKindName(PrunerKind pruner);
const char* QuantizationKindName(QuantizationKind quantization);

/// Everything needed to build and query any layout x pruner combination
/// through one factory. The per-pruner knobs keep the paper's defaults; a
/// zero/unset value means "resolve the layout-appropriate default".
struct SearcherConfig {
  SearcherLayout layout = SearcherLayout::kFlat;
  PrunerKind pruner = PrunerKind::kBond;
  Metric metric = Metric::kL2;
  size_t k = 10;        ///< Neighbors per query; must be > 0.
  size_t nprobe = 16;   ///< IVF buckets per query; must be > 0 on kIvf.
  /// Worker threads for SearchBatch, caller included: 1 = sequential (the
  /// paper-methodology default); see ResolveThreadCount in common/parallel.h
  /// for the 0 = one-per-hardware-thread semantic and the kMaxPoolThreads
  /// ceiling ValidateSearcherConfig enforces. Single-query Search is always
  /// sequential.
  size_t threads = 1;
  /// Optional non-owning shared pool for SearchBatch — the serving layer
  /// (src/serve/) injects one pool across every hosted collection. nullptr
  /// (default) keeps today's behavior: the searcher lazily owns a private
  /// pool sized to `threads`. With a pool injected, `threads` keeps only
  /// its sequential escape hatch (1 = sequential); any other value runs on
  /// the injected pool at the pool's size. The pool must outlive the
  /// searcher.
  ThreadPool* pool = nullptr;
  /// Vectors per PDX block; 0 = layout default (kPdxBlockSize, or the
  /// paper's 10K partitions for flat PDX-BOND).
  size_t block_capacity = 0;
  /// IVF build options, used only when the factory builds its own index.
  IvfOptions ivf;

  // Pruner knobs (ignored by the other pruners).
  float ads_epsilon0 = 2.1f;
  uint64_t ads_seed = 42;
  float bsa_multiplier = 1.0f;
  size_t bsa_max_fit_samples = 4096;
  /// unset = layout default: dimension zones on IVF's small blocks,
  /// distance-to-means on flat's large partitions (Section 6.5).
  std::optional<DimensionOrder> bond_order;
  size_t bond_zone_size = 16;

  /// kU8 serves the collection as a two-pass quantized tier: a
  /// dimension-major u8 code scan selects k * rerank_factor candidates,
  /// whose exact distances are recomputed on the retained float rows.
  /// Requires the L2 metric; the code scan is linear (no pruner bounds
  /// apply in code space), so ResolveConfig normalizes pruner to kLinear
  /// and ValidateSearcherConfig rejects the transform-based pruners
  /// (ADSampling/BSA) explicitly.
  QuantizationKind quantization = QuantizationKind::kNone;
  /// Candidate over-fetch of the quantized tier: the code scan keeps
  /// k * rerank_factor candidates for the exact rerank pass. 0 = no
  /// rerank (raw quantized distances); ignored when quantization = kNone.
  size_t rerank_factor = 4;

  /// PDXearch engine knobs. `k` and `metric` here are overwritten by the
  /// fields above; a step_observer forces SearchBatch sequential.
  PdxearchOptions search;
};

/// Rejects configurations that would silently return garbage: k == 0,
/// nprobe == 0 on kIvf, or a metric the chosen pruner's bound is invalid
/// for (ADSampling/BSA require L2; PDX-BOND requires a monotone metric).
Status ValidateSearcherConfig(const SearcherConfig& config);

/// Fills in the derived fields the user left at their "default" markers
/// (search.k/metric, block_capacity, bond_order). Idempotent. Every facade
/// factory resolves before storing its config so the config a searcher
/// carries — and persists — names concrete values, never markers whose
/// meaning could drift with future defaults.
SearcherConfig ResolveConfig(SearcherConfig config);

/// Aggregate measurements of one SearchBatch call.
struct BatchProfile {
  size_t queries = 0;
  double wall_ms = 0.0;     ///< Wall clock around the whole batch.
  PdxearchProfile sum;      ///< Per-query profiles, summed.
  LatencyRecorder latency;  ///< Per-query wall latencies (p50/p95/p99).

  void Accumulate(const PdxearchProfile& profile);
  /// Percentile snapshot of the per-query latencies.
  LatencySummary latency_summary() const { return latency.Summary(); }
  double qps() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(queries) / wall_ms
                         : 0.0;
  }
  /// Pruning power over the whole batch.
  double pruning_power() const { return sum.pruning_power(); }
};

/// Per-call query knobs for the knob-explicit concurrent entry points
/// (SearchWith / SearchBatchWith). 0 means "the searcher's configured
/// default" — the same resolution set_k/set_nprobe would have applied,
/// minus the shared-config mutation that made those setters unsafe under
/// concurrent dispatch. nprobe is ignored on the flat layout.
struct QueryKnobs {
  size_t k = 0;
  size_t nprobe = 0;
};

/// Runtime-polymorphic facade over the eight concrete searcher variants
/// (IvfPdxSearcher<P> / FlatPdxSearcher<P> for the four pruners): one type
/// to hold, one factory to call, whichever layout and pruner the config
/// picked. Obtain through MakeSearcher.
///
/// Thread safety: Search and sequential SearchBatch mutate per-searcher
/// scratch, so one Searcher must not be queried from multiple threads
/// concurrently. SearchBatch with threads != 1 parallelizes *internally*
/// (per-worker engines over the shared read-only store) and returns
/// exactly the neighbors the sequential path returns, query by query.
/// The one multi-querier surface is the knob-explicit per-slot family:
/// after ReserveScratch, SearchWith/SearchBatchWith calls on disjoint
/// slots (bands) may run concurrently from several threads — they mutate
/// no shared searcher state, only the slot engines they name.
class Searcher {
 public:
  virtual ~Searcher() = default;

  Searcher(const Searcher&) = delete;
  Searcher& operator=(const Searcher&) = delete;

  /// k-NN of `query` (dim() floats) under options().k / options().nprobe.
  virtual std::vector<Neighbor> Search(const float* query) = 0;

  /// k-NN of `num_queries` row-major queries, executed on options().threads
  /// workers. results[q] corresponds to queries + q * dim().
  virtual std::vector<std::vector<Neighbor>> SearchBatch(
      const float* queries, size_t num_queries) = 0;

  /// Profile of the most recent single Search (or of the last query the
  /// sequential batch path ran).
  virtual const PdxearchProfile& last_profile() const = 0;

  /// Aggregate profile of the most recent SearchBatch.
  const BatchProfile& last_batch_profile() const { return batch_profile_; }

  /// The PDX store backing this searcher (post-transformation layout). A
  /// sharded searcher returns its first shard's store; use count() for the
  /// logical collection size.
  virtual const PdxStore& store() const = 0;

  /// The IVF index queries are routed through; nullptr on the flat layout
  /// and on sharded searchers (each shard routes through its own index).
  virtual const IvfIndex* index() const = 0;

  /// Vectors searchable through this facade. Equals store().count() for the
  /// single-store searchers; a sharded searcher reports the sum over its
  /// shards.
  virtual size_t count() const { return store().count(); }

  /// Ceiling for runtime nprobe overrides: the IVF index's bucket count (1
  /// on the flat layout, where nprobe is ignored). A sharded searcher
  /// reports its largest shard's ceiling — nprobe applies per shard.
  virtual size_t max_nprobe() const {
    return index() != nullptr ? index()->num_buckets() : 1;
  }

  /// Shards fanned out to per query: 1 unless built by MakeShardedSearcher.
  virtual size_t num_shards() const { return 1; }

  /// Per-shard count of shard-level searches (how many times each shard ran
  /// a query), empty when unsharded. Safe to call from any thread while
  /// another thread queries the searcher — the counters are atomic.
  virtual std::vector<uint64_t> ShardDispatchCounts() const { return {}; }

  /// Bytes of quantized codes this searcher serves from (0 on the float
  /// tiers; count x dim for the u8 tier; a sharded searcher sums its
  /// shards). Feeds the pdx_quantized_bytes gauge in the serving layer.
  virtual uint64_t quantized_bytes() const { return 0; }

  /// Pre-sizes per-slot scratch (one search engine per slot), so
  /// SearchWith/SearchBatchWith calls on distinct slots in [0, slots) may
  /// run concurrently. Growth reallocates the engine table, so call this
  /// before the first concurrent use (the serving layer reserves every
  /// dispatcher's band at adoption time); not thread-safe itself. Knobs
  /// are resolved per call, never baked into the reserved engines.
  virtual void ReserveScratch(size_t slots) { (void)slots; }

  /// Search through slot `slot`'s scratch engine instead of the searcher's
  /// main scratch: after ReserveScratch(n), calls on distinct slots < n are
  /// safe to run concurrently (the store and pruner are read-only shared).
  /// `knobs` override k/nprobe for this call only — no set_k/set_nprobe,
  /// no shared-config mutation. Does not update
  /// last_profile()/last_batch_profile(); the call's own profile is copied
  /// into `*profile` when non-null. This is the hook the sharded facade
  /// tiles (shard x query) work over one ThreadPool with.
  ///
  /// The base implementation fails loudly (std::logic_error): silently
  /// forwarding to Search — the pre-concurrency behavior — would route
  /// "per-slot" calls onto the main scratch, which races undetected the
  /// moment two slots run concurrently. Every MakeSearcher /
  /// MakeShardedSearcher product overrides it.
  virtual std::vector<Neighbor> SearchWith(size_t slot, QueryKnobs knobs,
                                           const float* query,
                                           PdxearchProfile* profile = nullptr);

  /// Knob-implicit convenience: SearchWith under the configured defaults.
  std::vector<Neighbor> SearchWith(size_t slot, const float* query,
                                   PdxearchProfile* profile = nullptr) {
    return SearchWith(slot, QueryKnobs{}, query, profile);
  }

  /// k-NN of `num_queries` row-major queries through the slot band
  /// starting at `slot`, under per-call `knobs` — the knob-explicit batch
  /// entry point the serving layer's replicated dispatchers use. With a
  /// pool (see BatchPool) the batch fans out over slots
  /// [slot, slot + pool_threads); sequentially it stays on `slot` alone.
  /// Concurrent calls are safe when (a) their bands are disjoint and
  /// reserved up front via ReserveScratch and (b) the pool is an injected
  /// shared pool (SearcherConfig::pool) — the lazily owned pool is not
  /// built concurrency-safe. On MakeSearcher / MakeShardedSearcher
  /// products the call mutates no shared searcher state (options() keeps
  /// the configured defaults) and leaves last_batch_profile() alone; the
  /// batch's own profile is written to `*profile` when non-null.
  ///
  /// When `counters` is non-null it must point at `num_queries` entries;
  /// the call overwrites counters[q] with query q's OWN search work
  /// (blocks visited, lanes pruned, values avoided — per query even
  /// inside a pooled batch). Unlike `profile`, filling it allocates
  /// nothing: the serving layer passes a per-dispatcher pre-reserved
  /// array, so per-query observability rides the dispatch path for free
  /// (a BatchProfile would drag a LatencyRecorder window along).
  ///
  /// The base implementation is a serialized compatibility fallback for
  /// searcher implementations that predate per-slot scratch (e.g. adopted
  /// custom facades): correct under concurrent dispatch, but one batch at
  /// a time — and, unlike the overrides, it routes the knobs through
  /// set_k/set_nprobe (they persist in options()) and through SearchBatch
  /// (last_batch_profile() is overwritten). It zero-fills `counters` (the
  /// legacy surface has no per-query profiles to copy out). Facade
  /// products override it with the genuinely concurrent, mutation-free
  /// per-band implementation.
  virtual std::vector<std::vector<Neighbor>> SearchBatchWith(
      size_t slot, QueryKnobs knobs, const float* queries, size_t num_queries,
      BatchProfile* profile = nullptr, SearchCounters* counters = nullptr);

  /// Serializes the searcher's full state to `path` in the versioned PDXC
  /// collection format (storage/collection_format.h), so a later process
  /// can restore it without re-running k-means, transforms, or packing.
  /// The default routes through ExportSaved; implementations with internal
  /// synchronization (MutableSearcher) override it to hold their lock
  /// across the export-and-write window.
  virtual Status Save(const std::string& path) const;

  /// Flattens the searcher into its serializable description. Pointer
  /// members of `out` (arenas, raw rows) borrow from this searcher: write
  /// the file before the searcher is mutated or destroyed. The base
  /// returns Unsupported — adopted custom facades have no generic export.
  virtual Status ExportSaved(SavedCollection& out) const;

  /// Pins the loaded collection image this searcher's stores view into.
  /// Lives on the base class: base members are destroyed after every
  /// derived member, so the mapping outlives all views during teardown.
  void PinImage(std::shared_ptr<const void> image) {
    image_pin_ = std::move(image);
  }

  const SearcherConfig& options() const { return config_; }
  /// Vector dimensionality. Virtual so wrappers whose store() is swappable
  /// (MutableSearcher under compaction) can answer from an immutable cache.
  virtual size_t dim() const { return store().dim(); }

  // Runtime-adjustable query knobs (build-time knobs are fixed). Zero is a
  // programming error (asserted in debug builds) and clamped to 1 in
  // release builds so a bad runtime value can't silently turn every result
  // set empty.
  void set_k(size_t k) {
    assert(k > 0);
    config_.k = std::max<size_t>(1, k);
    config_.search.k = config_.k;
  }
  void set_nprobe(size_t nprobe) {
    assert(nprobe > 0);
    config_.nprobe = std::max<size_t>(1, nprobe);
  }
  /// Same validate-or-clamp discipline as set_k/set_nprobe: a count above
  /// kMaxPoolThreads is a programming error (asserted in debug builds) and
  /// clamped in release builds. 0 stays legal — ResolveThreadCount in
  /// common/parallel.h is the single home of the "0 = one per hardware
  /// thread" semantic.
  void set_threads(size_t threads) {
    assert(threads <= kMaxPoolThreads);
    config_.threads = std::min(threads, kMaxPoolThreads);
  }
  /// Injects (or with nullptr removes) a shared batch pool at runtime —
  /// the serving layer calls this on adopted searchers. See
  /// SearcherConfig::pool for the semantics and lifetime requirement.
  void set_pool(ThreadPool* pool) { config_.pool = pool; }

 protected:
  explicit Searcher(SearcherConfig config) : config_(std::move(config)) {}

  /// The one home of the batch fan-out policy, shared by every facade
  /// implementation so they cannot drift: nullptr = run sequentially
  /// (threads resolves to 1, or a step_observer — single-consumer state —
  /// is set); otherwise the injected shared pool wins, else a lazily owned
  /// pool sized to `threads` (reused across calls).
  ThreadPool* BatchPool();

  SearcherConfig config_;
  BatchProfile batch_profile_;

 private:
  std::shared_ptr<const void> image_pin_;   ///< See PinImage.
  std::unique_ptr<ThreadPool> owned_pool_;  ///< Only without an injected pool.
  /// Serializes the base SearchBatchWith fallback (legacy searchers with
  /// no per-slot scratch) so concurrent dispatchers queue instead of
  /// racing the shared config and main scratch.
  std::mutex legacy_dispatch_mutex_;
};

/// Builds the searcher `config` describes over `vectors`. On the kIvf
/// layout the factory builds (and owns) an IvfIndex with config.ivf.
/// Fails with InvalidArgument/Unsupported on bad configs — see
/// ValidateSearcherConfig — or an empty collection.
Result<std::unique_ptr<Searcher>> MakeSearcher(const VectorSet& vectors,
                                               SearcherConfig config);

/// Same, but over a caller-owned IVF index (the paper's methodology: every
/// competitor shares one bucket structure). `index` must outlive the
/// searcher and have been built over `vectors`; layout must be kIvf.
Result<std::unique_ptr<Searcher>> MakeSearcher(const VectorSet& vectors,
                                               const IvfIndex& index,
                                               SearcherConfig config);

}  // namespace pdx

#endif  // PDX_CORE_ANY_SEARCHER_H_
