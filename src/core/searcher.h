#ifndef PDX_CORE_SEARCHER_H_
#define PDX_CORE_SEARCHER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/pdxearch.h"
#include "index/ivf.h"
#include "index/topk.h"
#include "kernels/kernel_dispatch.h"
#include "pruning/adsampling.h"
#include "pruning/bsa.h"
#include "pruning/pdx_bond.h"
#include "storage/pdx_store.h"
#include "storage/vector_set.h"

namespace pdx {

/// A ready-to-query bundle: a (possibly transformed) collection laid out as
/// PDX blocks grouped by IVF bucket, the pruner that understands that
/// transformation, and a PDXearch engine over both.
///
/// Non-movable: the engine holds pointers into the bundle. Create through
/// the Make*IvfSearcher factories.
template <typename Pruner>
class IvfPdxSearcher {
 public:
  IvfPdxSearcher(const IvfIndex* index, PdxStore store, Pruner pruner,
                 PdxearchOptions options)
      : index_(index),
        store_(std::move(store)),
        pruner_(std::move(pruner)),
        engine_(&store_, &pruner_, std::move(options)) {}

  IvfPdxSearcher(const IvfPdxSearcher&) = delete;
  IvfPdxSearcher& operator=(const IvfPdxSearcher&) = delete;

  /// k-NN under the engine's options; `nprobe` buckets are scanned.
  std::vector<Neighbor> Search(const float* query, size_t k, size_t nprobe) {
    engine_.mutable_options().k = k;
    return engine_.SearchIvf(*index_, query, nprobe);
  }

  const PdxearchProfile& last_profile() const {
    return engine_.last_profile();
  }
  PdxearchOptions& mutable_options() { return engine_.mutable_options(); }
  const PdxStore& store() const { return store_; }
  const Pruner& pruner() const { return pruner_; }

 private:
  const IvfIndex* index_;
  PdxStore store_;
  Pruner pruner_;
  PdxearchEngine<Pruner> engine_;
};

/// Exact-search twin of IvfPdxSearcher: blocks are plain horizontal
/// partitions (Section 6.5 uses partitions of <= ~10K vectors).
template <typename Pruner>
class FlatPdxSearcher {
 public:
  FlatPdxSearcher(PdxStore store, Pruner pruner, PdxearchOptions options)
      : store_(std::move(store)),
        pruner_(std::move(pruner)),
        engine_(&store_, &pruner_, std::move(options)) {}

  FlatPdxSearcher(const FlatPdxSearcher&) = delete;
  FlatPdxSearcher& operator=(const FlatPdxSearcher&) = delete;

  std::vector<Neighbor> Search(const float* query, size_t k) {
    engine_.mutable_options().k = k;
    return engine_.SearchFlat(query);
  }

  const PdxearchProfile& last_profile() const {
    return engine_.last_profile();
  }
  PdxearchOptions& mutable_options() { return engine_.mutable_options(); }
  const PdxStore& store() const { return store_; }
  const Pruner& pruner() const { return pruner_; }

 private:
  PdxStore store_;
  Pruner pruner_;
  PdxearchEngine<Pruner> engine_;
};

using AdsIvfSearcher = IvfPdxSearcher<AdSamplingPruner>;
using BsaIvfSearcher = IvfPdxSearcher<BsaPruner>;
using BondIvfSearcher = IvfPdxSearcher<PdxBondPruner>;
using LinearIvfSearcher = IvfPdxSearcher<NoPruner>;

using AdsFlatSearcher = FlatPdxSearcher<AdSamplingPruner>;
using BsaFlatSearcher = FlatPdxSearcher<BsaPruner>;
using BondFlatSearcher = FlatPdxSearcher<PdxBondPruner>;
using LinearFlatSearcher = FlatPdxSearcher<NoPruner>;

/// ADSampling configuration (paper defaults).
struct AdsConfig {
  float epsilon0 = 2.1f;
  uint64_t seed = 42;
  size_t block_capacity = kPdxBlockSize;
  PdxearchOptions search;
};

/// BSA configuration. multiplier = 1 keeps BSA exact (Cauchy-Schwarz);
/// lower it to trade recall for pruning power.
struct BsaConfig {
  float multiplier = 1.0f;
  size_t max_fit_samples = 4096;
  size_t block_capacity = kPdxBlockSize;
  PdxearchOptions search;
};

/// PDX-BOND configuration.
struct BondConfig {
  DimensionOrder order = DimensionOrder::kDimensionZones;
  size_t zone_size = 16;
  size_t block_capacity = kPdxBlockSize;
  PdxearchOptions search;
};

// --- IVF searcher factories (collection + shared index) -------------------

/// PDX-ADS: rotates `vectors`, lays the rotated collection out as PDX
/// blocks grouped by `index`'s buckets.
std::unique_ptr<AdsIvfSearcher> MakeAdsIvfSearcher(const VectorSet& vectors,
                                                   const IvfIndex& index,
                                                   const AdsConfig& config);

/// PDX-BSA: PCA-projects `vectors`; also precomputes suffix-energy tables.
std::unique_ptr<BsaIvfSearcher> MakeBsaIvfSearcher(const VectorSet& vectors,
                                                   const IvfIndex& index,
                                                   const BsaConfig& config);

/// PDX-BOND: no transformation; uses collection statistics for the
/// query-aware dimension order.
std::unique_ptr<BondIvfSearcher> MakeBondIvfSearcher(const VectorSet& vectors,
                                                     const IvfIndex& index,
                                                     const BondConfig& config);

/// PDX linear scan (no pruning) over the IVF layout.
std::unique_ptr<LinearIvfSearcher> MakeLinearIvfSearcher(
    const VectorSet& vectors, const IvfIndex& index,
    const PdxearchOptions& search = {},
    size_t block_capacity = kPdxBlockSize);

// --- Flat (exact) searcher factories --------------------------------------

/// Exact-search partition size used by the paper (Section 6.5).
inline constexpr size_t kExactSearchBlockCapacity = 10240;

/// Default flat PDX-BOND setup: 10K-vector partitions + distance-to-means
/// (large blocks allow per-dimension ordering; Section 6.5).
BondConfig DefaultFlatBondConfig();

std::unique_ptr<BondFlatSearcher> MakeBondFlatSearcher(
    const VectorSet& vectors, BondConfig config = DefaultFlatBondConfig());

std::unique_ptr<AdsFlatSearcher> MakeAdsFlatSearcher(const VectorSet& vectors,
                                                     const AdsConfig& config);

std::unique_ptr<BsaFlatSearcher> MakeBsaFlatSearcher(const VectorSet& vectors,
                                                     const BsaConfig& config);

std::unique_ptr<LinearFlatSearcher> MakeLinearFlatSearcher(
    const VectorSet& vectors, const PdxearchOptions& search = {},
    size_t block_capacity = kPdxBlockSize);

// --- Horizontal IVF baseline (FAISS / Milvus stand-in) --------------------

/// IVF linear scan on the horizontal layout with explicit-SIMD kernels.
/// This is what FAISS's and Milvus's IVF_FLAT do; `isa` picks the tier.
std::vector<Neighbor> IvfNarySearch(const IvfIndex& index,
                                    const BucketOrderedSet& data,
                                    const float* query, size_t k,
                                    size_t nprobe, Metric metric = Metric::kL2,
                                    Isa isa = Isa::kBest);

}  // namespace pdx

#endif  // PDX_CORE_SEARCHER_H_
