#ifndef PDX_CORE_PDX_H_
#define PDX_CORE_PDX_H_

/// \file pdx.h
/// Umbrella header for the PDX library.
///
/// PDX (Partition Dimensions Across) is a data layout for vector similarity
/// search: blocks of vectors stored dimension-major, searched dimension-by-
/// dimension with pruning (Kuffo, Krippner & Boncz, SIGMOD 2025).
///
/// Typical usage — exact search without preprocessing:
///
///   pdx::VectorSet data = ...;                         // N x D float32
///   auto searcher = pdx::MakeBondFlatSearcher(data);   // PDX-BOND
///   auto nn = searcher->Search(query, /*k=*/10);
///
/// Approximate search on an IVF index with ADSampling pruning:
///
///   pdx::IvfIndex index = pdx::IvfIndex::Build(data, {});
///   auto ads = pdx::MakeAdsIvfSearcher(data, index, {});
///   auto nn = ads->Search(query, /*k=*/10, /*nprobe=*/32);

#include "common/status.h"    // IWYU pragma: export
#include "common/types.h"     // IWYU pragma: export
#include "core/pdxearch.h"    // IWYU pragma: export
#include "core/pruning_trace.h"  // IWYU pragma: export
#include "core/searcher.h"    // IWYU pragma: export
#include "index/flat.h"       // IWYU pragma: export
#include "index/ivf.h"        // IWYU pragma: export
#include "index/topk.h"       // IWYU pragma: export
#include "pruning/adsampling.h"  // IWYU pragma: export
#include "pruning/bond.h"        // IWYU pragma: export
#include "pruning/bsa.h"         // IWYU pragma: export
#include "pruning/pdx_bond.h"    // IWYU pragma: export
#include "storage/fvecs_io.h"    // IWYU pragma: export
#include "storage/pdx_store.h"   // IWYU pragma: export
#include "storage/vector_set.h"  // IWYU pragma: export

#endif  // PDX_CORE_PDX_H_
