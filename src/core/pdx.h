#ifndef PDX_CORE_PDX_H_
#define PDX_CORE_PDX_H_

/// \file pdx.h
/// Umbrella header for the PDX library.
///
/// PDX (Partition Dimensions Across) is a data layout for vector similarity
/// search: blocks of vectors stored dimension-major, searched dimension-by-
/// dimension with pruning (Kuffo, Krippner & Boncz, SIGMOD 2025).
///
/// Typical usage — the runtime facade (any layout x pruner combination):
///
///   pdx::VectorSet data = ...;                         // N x D float32
///   pdx::SearcherConfig config;                        // flat PDX-BOND
///   config.k = 10;
///   auto searcher = pdx::MakeSearcher(data, config).value();
///   auto nn = searcher->Search(query);
///
/// Approximate search on an IVF index with ADSampling pruning, served in
/// multi-threaded batches:
///
///   config.layout = pdx::SearcherLayout::kIvf;
///   config.pruner = pdx::PrunerKind::kAdsampling;
///   config.nprobe = 32;
///   config.threads = 8;
///   auto ads = pdx::MakeSearcher(data, config).value();
///   auto all_nn = ads->SearchBatch(queries, num_queries);
///
/// Serving many clients asynchronously — named collections, one shared
/// pool, futures with admission control (src/serve/):
///
///   pdx::SearchService service;
///   service.AddCollection("docs", data, config);
///   auto ticket = service.Submit("docs", query);
///   pdx::QueryResult result = ticket.result.get();
///
/// Sharding one hot collection across searchers (scatter-gather top-k,
/// exact merge — core/sharded_searcher.h):
///
///   pdx::ShardingOptions sharding;
///   sharding.num_shards = 4;
///   auto sharded = pdx::MakeShardedSearcher(data, config, sharding).value();
///   service.AddCollection("hot", data, config, sharding);  // or hosted
///
/// The compile-time factories (MakeBondFlatSearcher, MakeAdsIvfSearcher,
/// ...) remain for benchmark code that wants the concrete types.

#include "common/status.h"    // IWYU pragma: export
#include "common/types.h"     // IWYU pragma: export
#include "core/any_searcher.h"   // IWYU pragma: export
#include "core/pdxearch.h"    // IWYU pragma: export
#include "core/pruning_trace.h"  // IWYU pragma: export
#include "core/searcher.h"    // IWYU pragma: export
#include "core/sharded_searcher.h"  // IWYU pragma: export
#include "index/flat.h"       // IWYU pragma: export
#include "index/ivf.h"        // IWYU pragma: export
#include "index/topk.h"       // IWYU pragma: export
#include "pruning/adsampling.h"  // IWYU pragma: export
#include "pruning/bond.h"        // IWYU pragma: export
#include "pruning/bsa.h"         // IWYU pragma: export
#include "pruning/pdx_bond.h"    // IWYU pragma: export
#include "serve/search_service.h"  // IWYU pragma: export
#include "storage/fvecs_io.h"    // IWYU pragma: export
#include "storage/pdx_store.h"   // IWYU pragma: export
#include "storage/vector_set.h"  // IWYU pragma: export

#endif  // PDX_CORE_PDX_H_
