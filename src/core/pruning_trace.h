#ifndef PDX_CORE_PRUNING_TRACE_H_
#define PDX_CORE_PRUNING_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pdx {

/// Accumulates one query's pruning behavior across all blocks it visited:
/// the fraction of vectors still unpruned after each scanned-dimension
/// count, plus the total fraction of dimension values avoided.
///
/// Feed it to PdxearchOptions::step_observer (with fixed_step = 1 and
/// adaptive_steps = false to test at every dimension, as Tables 2 and 6
/// do), then read the curve after the query.
class PruningTrace {
 public:
  /// `dim` is the collection dimensionality.
  explicit PruningTrace(size_t dim);

  /// Observer callback (dims_scanned, alive, block_count).
  void Observe(size_t dims_scanned, size_t alive, size_t block_count);

  /// Resets for the next query.
  void Clear();

  /// Vectors that entered WARMUP (START-phase vectors are excluded: no
  /// threshold existed yet, so pruning was impossible by construction).
  uint64_t warmup_vectors() const { return warmup_vectors_; }

  /// Fraction of warmup vectors still unpruned after `d` dims, d in
  /// [1, dim]. Returns 1.0 when nothing was observed.
  double AliveFraction(size_t d) const;

  /// Full curve: AliveFraction(d) for d = 1..dim.
  std::vector<double> Curve() const;

  /// Fraction of dimension *values* avoided across warmup vectors: the
  /// pruning-power number printed inside the Table 2/6 plots.
  double ValuesAvoided() const;

 private:
  size_t dim_;
  uint64_t warmup_vectors_ = 0;
  /// alive_sum_[d] = sum over blocks of survivors after d dims.
  std::vector<uint64_t> alive_sum_;
  /// observed_[d] = true when at least one block tested at depth d.
  std::vector<uint8_t> observed_;
};

}  // namespace pdx

#endif  // PDX_CORE_PRUNING_TRACE_H_
