#include "core/any_searcher.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "common/parallel.h"
#include "common/timer.h"
#include "core/persist.h"
#include "core/searcher.h"
#include "quant/quantized_searcher.h"
#include "storage/collection_format.h"

namespace pdx {

const char* SearcherLayoutName(SearcherLayout layout) {
  switch (layout) {
    case SearcherLayout::kFlat:
      return "flat";
    case SearcherLayout::kIvf:
      return "ivf";
  }
  return "unknown";
}

const char* PrunerKindName(PrunerKind pruner) {
  switch (pruner) {
    case PrunerKind::kLinear:
      return "linear";
    case PrunerKind::kAdsampling:
      return "adsampling";
    case PrunerKind::kBsa:
      return "bsa";
    case PrunerKind::kBond:
      return "bond";
  }
  return "unknown";
}

const char* QuantizationKindName(QuantizationKind quantization) {
  switch (quantization) {
    case QuantizationKind::kNone:
      return "none";
    case QuantizationKind::kU8:
      return "u8";
  }
  return "unknown";
}

Status ValidateSearcherConfig(const SearcherConfig& config) {
  // Out-of-range enum values (a config deserialized from disk, say) must
  // fail here, not as a null searcher later.
  if (config.layout != SearcherLayout::kFlat &&
      config.layout != SearcherLayout::kIvf) {
    return Status::InvalidArgument("SearcherConfig: unknown layout value");
  }
  if (config.pruner != PrunerKind::kLinear &&
      config.pruner != PrunerKind::kAdsampling &&
      config.pruner != PrunerKind::kBsa && config.pruner != PrunerKind::kBond) {
    return Status::InvalidArgument("SearcherConfig: unknown pruner value");
  }
  if (config.metric != Metric::kL2 && config.metric != Metric::kIp &&
      config.metric != Metric::kL1) {
    return Status::InvalidArgument("SearcherConfig: unknown metric value");
  }
  if (config.k == 0) {
    return Status::InvalidArgument("SearcherConfig: k must be > 0");
  }
  if (config.pruner == PrunerKind::kBond && config.bond_zone_size == 0) {
    return Status::InvalidArgument(
        "SearcherConfig: bond_zone_size must be > 0");
  }
  if (config.layout == SearcherLayout::kIvf && config.nprobe == 0) {
    return Status::InvalidArgument(
        "SearcherConfig: nprobe must be > 0 on the IVF layout");
  }
  // Same discipline as Searcher::set_threads, which clamps at runtime:
  // ResolveThreadCount (common/parallel.h) owns the 0 = one-per-hardware-
  // thread semantic; counts above kMaxPoolThreads are unit mistakes.
  if (config.threads > kMaxPoolThreads) {
    return Status::InvalidArgument(
        "SearcherConfig: threads must be <= " +
        std::to_string(kMaxPoolThreads) + " (0 = one per hardware thread)");
  }
  switch (config.pruner) {
    case PrunerKind::kLinear:
      break;  // Pure scan: every metric works.
    case PrunerKind::kAdsampling:
    case PrunerKind::kBsa:
      if (config.metric != Metric::kL2) {
        return Status::Unsupported(
            std::string("SearcherConfig: the ") +
            PrunerKindName(config.pruner) +
            " pruner's bounds are only valid for the L2 metric");
      }
      break;
    case PrunerKind::kBond:
      if (config.metric == Metric::kIp) {
        return Status::Unsupported(
            "SearcherConfig: PDX-BOND needs a monotone metric (L2/L1); "
            "inner-product partials can still decrease");
      }
      break;
  }
  if (config.quantization != QuantizationKind::kNone &&
      config.quantization != QuantizationKind::kU8) {
    return Status::InvalidArgument(
        "SearcherConfig: unknown quantization value");
  }
  if (config.quantization == QuantizationKind::kU8) {
    // The code-space distance w_d * (q'_d - code)^2 expands the L2 sum
    // only; IP/L1 have no u8 asymmetric form here.
    if (config.metric != Metric::kL2) {
      return Status::Unsupported(
          "SearcherConfig: the u8 quantized tier only supports the L2 "
          "metric");
    }
    // The quantized scan is a linear code scan: transform-based pruners
    // (rotation / PCA projections) do not apply in code space. kLinear is
    // the tier's pruner; kBond (the default) is silently normalized to it
    // by ResolveConfig so `quantization = u8` works without also touching
    // the pruner knob.
    if (config.pruner == PrunerKind::kAdsampling ||
        config.pruner == PrunerKind::kBsa) {
      return Status::Unsupported(
          std::string("SearcherConfig: the ") + PrunerKindName(config.pruner) +
          " pruner does not compose with the u8 quantized tier (its "
          "transform does not apply in code space)");
    }
  }
  return Status::OK();
}

void BatchProfile::Accumulate(const PdxearchProfile& profile) {
  sum += profile;
}

ThreadPool* Searcher::BatchPool() {
  size_t threads = ResolveThreadCount(config_.threads);
  if (config_.search.step_observer) threads = 1;
  if (threads <= 1) return nullptr;
  if (config_.pool != nullptr) return config_.pool;
  if (owned_pool_ == nullptr || owned_pool_->num_threads() != threads) {
    owned_pool_ = std::make_unique<ThreadPool>(threads);
  }
  return owned_pool_.get();
}

Status Searcher::Save(const std::string& path) const {
  SavedCollection saved;
  PDX_RETURN_IF_ERROR(ExportSaved(saved));
  return WriteCollectionFile(path, saved);
}

Status Searcher::ExportSaved(SavedCollection& out) const {
  (void)out;
  return Status::Unsupported(
      "Searcher::ExportSaved: this searcher implementation has no "
      "serializable form (adopted custom facade?)");
}

std::vector<Neighbor> Searcher::SearchWith(size_t slot, QueryKnobs knobs,
                                           const float* query,
                                           PdxearchProfile* profile) {
  (void)slot;
  (void)knobs;
  (void)query;
  (void)profile;
  throw std::logic_error(
      "Searcher::SearchWith: this searcher does not implement per-slot "
      "scratch; a silent forward to Search would race under concurrent "
      "dispatch. Override SearchWith, or stay on the single-querier "
      "Search/SearchBatch surface.");
}

std::vector<std::vector<Neighbor>> Searcher::SearchBatchWith(
    size_t slot, QueryKnobs knobs, const float* queries, size_t num_queries,
    BatchProfile* profile, SearchCounters* counters) {
  (void)slot;
  if (counters != nullptr) {
    // The legacy surface has no per-query profiles; all-zero counters are
    // the documented "nothing measured" value, never stale garbage.
    std::fill(counters, counters + num_queries, SearchCounters{});
  }
  // Compatibility fallback: route the knob-explicit call through the
  // legacy mutating surface, one batch at a time. Concurrent dispatchers
  // stay correct (the mutex serializes the set_k/SearchBatch pair) but
  // gain no concurrency on this searcher — facade products override this
  // with the per-band implementation that needs neither the mutex nor the
  // setters.
  std::lock_guard<std::mutex> lock(legacy_dispatch_mutex_);
  if (knobs.k > 0) set_k(knobs.k);
  if (knobs.nprobe > 0) set_nprobe(knobs.nprobe);
  std::vector<std::vector<Neighbor>> results =
      SearchBatch(queries, num_queries);
  if (profile != nullptr) *profile = last_batch_profile();
  return results;
}

SearcherConfig ResolveConfig(SearcherConfig config) {
  config.search.k = config.k;
  config.search.metric = config.metric;
  if (config.quantization == QuantizationKind::kU8) {
    // The quantized tier runs a linear scan over codes; pin the pruner so
    // the persisted/reported config names what actually runs.
    config.pruner = PrunerKind::kLinear;
  }
  if (config.block_capacity == 0) {
    // Flat PDX-BOND uses the paper's large exact-search partitions
    // (Section 6.5); everything else uses register-resident blocks.
    config.block_capacity = (config.layout == SearcherLayout::kFlat &&
                             config.pruner == PrunerKind::kBond)
                                ? kExactSearchBlockCapacity
                                : kPdxBlockSize;
  }
  if (!config.bond_order.has_value()) {
    config.bond_order = config.layout == SearcherLayout::kFlat
                            ? DimensionOrder::kDistanceToMeans
                            : DimensionOrder::kDimensionZones;
  }
  return config;
}

namespace {

AdsConfig ToAdsConfig(const SearcherConfig& config) {
  AdsConfig ads;
  ads.epsilon0 = config.ads_epsilon0;
  ads.seed = config.ads_seed;
  ads.block_capacity = config.block_capacity;
  ads.search = config.search;
  return ads;
}

BsaConfig ToBsaConfig(const SearcherConfig& config) {
  BsaConfig bsa;
  bsa.multiplier = config.bsa_multiplier;
  bsa.max_fit_samples = config.bsa_max_fit_samples;
  bsa.block_capacity = config.block_capacity;
  bsa.search = config.search;
  return bsa;
}

BondConfig ToBondConfig(const SearcherConfig& config) {
  BondConfig bond;
  bond.order = *config.bond_order;
  bond.zone_size = config.bond_zone_size;
  bond.block_capacity = config.block_capacity;
  bond.search = config.search;
  return bond;
}

/// The one concrete facade implementation: holds either a flat or an IVF
/// searcher for pruner P, plus the per-worker engines SearchBatch fans out
/// over. Worker engines share the inner searcher's (read-only) store and
/// pruner, so a batch costs no extra copies of the collection.
template <typename P>
class AnySearcherImpl final : public Searcher {
 public:
  AnySearcherImpl(SearcherConfig config,
                  std::unique_ptr<FlatPdxSearcher<P>> flat)
      : Searcher(std::move(config)), flat_(std::move(flat)) {}

  /// `owned_index` is null when the caller keeps ownership of `index`.
  AnySearcherImpl(SearcherConfig config, std::unique_ptr<IvfIndex> owned_index,
                  const IvfIndex* index, std::unique_ptr<IvfPdxSearcher<P>> ivf)
      : Searcher(std::move(config)),
        owned_index_(std::move(owned_index)),
        index_(index),
        ivf_(std::move(ivf)) {}

  std::vector<Neighbor> Search(const float* query) override {
    if (flat_ != nullptr) return flat_->Search(query, config_.k);
    return ivf_->Search(query, config_.k, config_.nprobe);
  }

  std::vector<std::vector<Neighbor>> SearchBatch(const float* queries,
                                                 size_t num_queries) override {
    batch_profile_ = BatchProfile{};
    batch_profile_.queries = num_queries;
    std::vector<std::vector<Neighbor>> results(num_queries);
    if (num_queries == 0) return results;

    const size_t d = dim();
    // BatchPool owns the fan-out policy (sequential vs injected shared pool
    // vs lazily owned pool); a one-query batch stays sequential without
    // ever constructing a pool.
    ThreadPool* pool = num_queries == 1 ? nullptr : BatchPool();

    if (pool == nullptr) {
      Timer wall;
      for (size_t q = 0; q < num_queries; ++q) {
        Timer per_query;
        results[q] = Search(queries + q * d);
        batch_profile_.latency.Record(per_query.ElapsedMillis());
        batch_profile_.Accumulate(last_profile());
      }
      batch_profile_.wall_ms = wall.ElapsedMillis();
    } else {
      // Engines are sized to the thread count, not the batch size: small
      // batches leave workers idle for one wakeup instead of tearing the
      // "persistent" pool down. Setup stays outside the wall-clock so
      // qps() reflects steady-state serving.
      const size_t threads = pool->num_threads();
      EnsureEngines(threads);
      std::vector<BatchProfile> worker_profiles(threads);
      Timer wall;
      pool->ParallelFor(num_queries, [&](size_t q, size_t w) {
        Timer per_query;
        PdxearchEngine<P>& engine = *engines_[w];
        results[q] = flat_ != nullptr
                         ? engine.SearchFlat(queries + q * d)
                         : engine.SearchIvf(*index_, queries + q * d,
                                            config_.nprobe);
        worker_profiles[w].latency.Record(per_query.ElapsedMillis());
        worker_profiles[w].Accumulate(engine.last_profile());
      });
      batch_profile_.wall_ms = wall.ElapsedMillis();
      for (const BatchProfile& wp : worker_profiles) {
        batch_profile_.Accumulate(wp.sum);
        batch_profile_.latency.Merge(wp.latency);
      }
    }
    return results;
  }

  const PdxearchProfile& last_profile() const override {
    return flat_ != nullptr ? flat_->last_profile() : ivf_->last_profile();
  }

  const PdxStore& store() const override {
    return flat_ != nullptr ? flat_->store() : ivf_->store();
  }

  const IvfIndex* index() const override { return index_; }

  Status ExportSaved(SavedCollection& out) const override {
    out = SavedCollection{};
    out.meta = MetaFromConfig(config_);
    out.meta.dim = dim();
    out.meta.count = count();
    SavedShard shard;
    shard.store = ExportStore(store());
    if (index_ != nullptr) {
      shard.has_ivf = true;
      // The centroid PDX store is persisted (not rebuilt at load): packing
      // it again would both cost a repack and let future packing changes
      // silently alter the saved index's bucket ranking.
      shard.centroids = ExportStore(index_->centroids_pdx());
      const VectorSet& rows = index_->centroids();
      shard.centroid_rows.assign(rows.data(),
                                 rows.data() + rows.count() * rows.dim());
      shard.bucket_offsets.reserve(index_->num_buckets() + 1);
      shard.bucket_offsets.push_back(0);
      for (const std::vector<VectorId>& bucket : index_->buckets()) {
        shard.bucket_ids.insert(shard.bucket_ids.end(), bucket.begin(),
                                bucket.end());
        shard.bucket_offsets.push_back(shard.bucket_ids.size());
      }
    }
    if constexpr (std::is_same_v<P, AdSamplingPruner>) {
      shard.ads_rotation = pruner().rotation();
    } else if constexpr (std::is_same_v<P, BsaPruner>) {
      const Pca& pca = pruner().pca();
      shard.pca_mean = pca.mean();
      shard.pca_variance = pca.explained_variance();
      shard.pca_components = pca.components();
    }
    // PDX-BOND needs no section: it is rebuilt from the persisted store
    // stats (means) plus the resolved order/zone knobs in the meta.
    out.shards.push_back(std::move(shard));
    return Status::OK();
  }

  void ReserveScratch(size_t slots) override { GrowEngines(slots); }

  using Searcher::SearchWith;

  std::vector<Neighbor> SearchWith(size_t slot, QueryKnobs knobs,
                                   const float* query,
                                   PdxearchProfile* profile) override {
    // Lazy growth keeps single-threaded callers convenient; concurrent
    // callers must have called ReserveScratch first (growth reallocates
    // engines_).
    if (slot >= engines_.size()) GrowEngines(slot + 1);
    PdxearchEngine<P>& engine = *engines_[slot];
    // The knobs live on the slot's engine (k) or the call itself (nprobe),
    // never on the shared config — distinct slots never share engine
    // state, so per-call overrides are race-free under concurrent
    // dispatch.
    engine.mutable_options().k = knobs.k > 0 ? knobs.k : config_.k;
    const size_t nprobe = knobs.nprobe > 0 ? knobs.nprobe : config_.nprobe;
    std::vector<Neighbor> result =
        flat_ != nullptr ? engine.SearchFlat(query)
                         : engine.SearchIvf(*index_, query, nprobe);
    if (profile != nullptr) *profile = engine.last_profile();
    return result;
  }

  std::vector<std::vector<Neighbor>> SearchBatchWith(
      size_t slot, QueryKnobs knobs, const float* queries, size_t num_queries,
      BatchProfile* profile, SearchCounters* counters) override {
    BatchProfile local;
    local.queries = num_queries;
    std::vector<std::vector<Neighbor>> results(num_queries);
    if (num_queries == 0) {
      if (profile != nullptr) *profile = std::move(local);
      return results;
    }
    const size_t d = dim();
    ThreadPool* pool = num_queries == 1 ? nullptr : BatchPool();
    if (pool == nullptr) {
      Timer wall;
      for (size_t q = 0; q < num_queries; ++q) {
        Timer per_query;
        PdxearchProfile query_profile;
        results[q] = SearchWith(slot, knobs, queries + q * d, &query_profile);
        local.latency.Record(per_query.ElapsedMillis());
        local.Accumulate(query_profile);
        if (counters != nullptr) counters[q] = query_profile.counters();
      }
      local.wall_ms = wall.ElapsedMillis();
    } else {
      // Fan out over the band [slot, slot + workers): worker w of this
      // loop owns slot + w, so concurrent batches on disjoint bands never
      // share an engine. Growth here is for single-caller convenience
      // only — concurrent callers have reserved their bands up front.
      const size_t workers = pool->num_threads();
      if (slot + workers > engines_.size()) GrowEngines(slot + workers);
      std::vector<BatchProfile> worker_profiles(workers);
      Timer wall;
      pool->ParallelFor(num_queries, [&](size_t q, size_t w) {
        Timer per_query;
        PdxearchProfile query_profile;
        results[q] =
            SearchWith(slot + w, knobs, queries + q * d, &query_profile);
        worker_profiles[w].latency.Record(per_query.ElapsedMillis());
        worker_profiles[w].Accumulate(query_profile);
        // Exactly one task owns index q, so counters[q] is written by one
        // worker only — race-free without any synchronization.
        if (counters != nullptr) counters[q] = query_profile.counters();
      });
      local.wall_ms = wall.ElapsedMillis();
      for (const BatchProfile& wp : worker_profiles) {
        local.Accumulate(wp.sum);
        local.latency.Merge(wp.latency);
      }
    }
    if (profile != nullptr) *profile = std::move(local);
    return results;
  }

 private:
  const P& pruner() const {
    return flat_ != nullptr ? flat_->pruner() : ivf_->pruner();
  }

  // Appends engines until `n` slots exist. Growth only — knobs are pushed
  // per call (SearchWith) or per batch (EnsureEngines), never here, so a
  // reserved band carries no state another band could observe.
  void GrowEngines(size_t n) {
    while (engines_.size() < n) {
      engines_.push_back(std::make_unique<PdxearchEngine<P>>(
          &store(), &pruner(), config_.search));
    }
  }

  // Legacy batch path: grows the per-worker engines and pushes the current
  // config (k may have changed via set_k since the last batch) into each.
  void EnsureEngines(size_t threads) {
    GrowEngines(threads);
    for (size_t w = 0; w < threads; ++w) {
      engines_[w]->mutable_options() = config_.search;
    }
  }

  // Declaration order doubles as lifetime order: engines_ sits on top of
  // the inner searcher's store/pruner, which sit on top of the (possibly
  // owned) index — members below destroy first. (The lazily owned batch
  // pool lives in the Searcher base and is idle between calls.)
  std::unique_ptr<IvfIndex> owned_index_;
  const IvfIndex* index_ = nullptr;
  std::unique_ptr<FlatPdxSearcher<P>> flat_;
  std::unique_ptr<IvfPdxSearcher<P>> ivf_;
  std::vector<std::unique_ptr<PdxearchEngine<P>>> engines_;
};

template <typename P>
std::unique_ptr<Searcher> WrapFlat(SearcherConfig config,
                                   std::unique_ptr<FlatPdxSearcher<P>> flat) {
  return std::make_unique<AnySearcherImpl<P>>(std::move(config),
                                              std::move(flat));
}

template <typename P>
std::unique_ptr<Searcher> WrapIvf(SearcherConfig config,
                                  std::unique_ptr<IvfIndex> owned_index,
                                  const IvfIndex* index,
                                  std::unique_ptr<IvfPdxSearcher<P>> ivf) {
  return std::make_unique<AnySearcherImpl<P>>(
      std::move(config), std::move(owned_index), index, std::move(ivf));
}

std::unique_ptr<Searcher> MakeFlatSearcher(const VectorSet& vectors,
                                           SearcherConfig config) {
  switch (config.pruner) {
    case PrunerKind::kLinear:
      return WrapFlat<NoPruner>(
          config, MakeLinearFlatSearcher(vectors, config.search,
                                         config.block_capacity));
    case PrunerKind::kAdsampling:
      return WrapFlat<AdSamplingPruner>(
          config, MakeAdsFlatSearcher(vectors, ToAdsConfig(config)));
    case PrunerKind::kBsa:
      return WrapFlat<BsaPruner>(
          config, MakeBsaFlatSearcher(vectors, ToBsaConfig(config)));
    case PrunerKind::kBond:
      return WrapFlat<PdxBondPruner>(
          config, MakeBondFlatSearcher(vectors, ToBondConfig(config)));
  }
  return nullptr;
}

std::unique_ptr<Searcher> MakeIvfSearcher(const VectorSet& vectors,
                                          std::unique_ptr<IvfIndex> owned,
                                          const IvfIndex& index,
                                          SearcherConfig config) {
  switch (config.pruner) {
    case PrunerKind::kLinear:
      return WrapIvf<NoPruner>(
          config, std::move(owned), &index,
          MakeLinearIvfSearcher(vectors, index, config.search,
                                config.block_capacity));
    case PrunerKind::kAdsampling:
      return WrapIvf<AdSamplingPruner>(
          config, std::move(owned), &index,
          MakeAdsIvfSearcher(vectors, index, ToAdsConfig(config)));
    case PrunerKind::kBsa:
      return WrapIvf<BsaPruner>(
          config, std::move(owned), &index,
          MakeBsaIvfSearcher(vectors, index, ToBsaConfig(config)));
    case PrunerKind::kBond:
      return WrapIvf<PdxBondPruner>(
          config, std::move(owned), &index,
          MakeBondIvfSearcher(vectors, index, ToBondConfig(config)));
  }
  return nullptr;
}

/// Wraps a restored (store, pruner) pair — and, on kIvf, the restored
/// index — into the same facade MakeSearcher products use, via the direct
/// FlatPdxSearcher/IvfPdxSearcher constructors: no factory pipeline, no
/// transform, no packing.
template <typename P>
std::unique_ptr<Searcher> WrapImageSearcher(const SearcherConfig& config,
                                            std::unique_ptr<IvfIndex> owned,
                                            PdxStore store, P pruner) {
  if (config.layout == SearcherLayout::kFlat) {
    return WrapFlat<P>(config, std::make_unique<FlatPdxSearcher<P>>(
                                   std::move(store), std::move(pruner),
                                   config.search));
  }
  const IvfIndex* index = owned.get();
  return WrapIvf<P>(config, std::move(owned), index,
                    std::make_unique<IvfPdxSearcher<P>>(
                        index, std::move(store), std::move(pruner),
                        config.search));
}

PdxStore StoreFromImage(StoreImage&& si) {
  return PdxStore::FromView(si.dim, si.count, si.block_counts,
                            std::move(si.group_block_start), si.ids,
                            std::move(si.stats), std::move(si.block_stats),
                            si.arena);
}

}  // namespace

Result<std::unique_ptr<Searcher>> MakeSearcherFromImage(
    std::shared_ptr<const CollectionImage> image, uint32_t shard,
    SearcherConfig config) {
  PDX_RETURN_IF_ERROR(ValidateSearcherConfig(config));
  config = ResolveConfig(std::move(config));
  if (config.quantization == QuantizationKind::kU8) {
    return MakeQuantizedSearcherFromImage(std::move(image), shard,
                                          std::move(config));
  }

  Result<StoreImage> decoded = DecodeStore(*image, 2 * shard);
  if (!decoded.ok()) return decoded.status();
  PdxStore store = StoreFromImage(std::move(decoded).value());

  std::unique_ptr<IvfIndex> owned;
  if (config.layout == SearcherLayout::kIvf) {
    Result<IvfImage> ivf = DecodeIvf(*image, shard);
    if (!ivf.ok()) return ivf.status();
    Result<StoreImage> cent = DecodeStore(*image, 2 * shard + 1);
    if (!cent.ok()) return cent.status();
    if (cent.value().count != ivf.value().num_buckets ||
        cent.value().dim != store.dim()) {
      return Status::Corruption(
          "collection file " + image->path() +
          ": centroid store disagrees with bucket count");
    }
    VectorSet centroids = VectorSet::FromRowMajor(
        ivf.value().centroid_rows, ivf.value().num_buckets, store.dim());
    owned = std::make_unique<IvfIndex>(IvfIndex::FromParts(
        store.count(), std::move(centroids),
        StoreFromImage(std::move(cent).value()),
        std::move(ivf.value().buckets)));
  }

  std::unique_ptr<Searcher> searcher;
  switch (config.pruner) {
    case PrunerKind::kLinear:
      searcher = WrapImageSearcher<NoPruner>(config, std::move(owned),
                                             std::move(store), NoPruner{});
      break;
    case PrunerKind::kAdsampling: {
      Result<Matrix> rotation = DecodeRotation(*image, shard);
      if (!rotation.ok()) return rotation.status();
      if (rotation.value().rows() != store.dim()) {
        return Status::Corruption("collection file " + image->path() +
                                  ": rotation dim disagrees with store");
      }
      AdSamplingPruner pruner(std::move(rotation).value(),
                              config.ads_epsilon0);
      searcher = WrapImageSearcher<AdSamplingPruner>(
          config, std::move(owned), std::move(store), std::move(pruner));
      break;
    }
    case PrunerKind::kBsa: {
      Result<PcaImage> pca = DecodePca(*image, shard);
      if (!pca.ok()) return pca.status();
      if (pca.value().components.cols() != store.dim()) {
        return Status::Corruption("collection file " + image->path() +
                                  ": PCA dim disagrees with store");
      }
      BsaPruner pruner(
          Pca::FromParts(std::move(pca.value().mean),
                         std::move(pca.value().variance),
                         std::move(pca.value().components)),
          config.bsa_multiplier);
      // The suffix-energy tables are derived, not persisted: BuildAux is
      // deterministic in the packed lanes, so the rebuilt tables match the
      // saved searcher's bit for bit (the parity tests pin this).
      pruner.BuildAux(store);
      searcher = WrapImageSearcher<BsaPruner>(config, std::move(owned),
                                              std::move(store),
                                              std::move(pruner));
      break;
    }
    case PrunerKind::kBond: {
      PdxBondPruner pruner(store.stats().means, *config.bond_order,
                           config.bond_zone_size);
      searcher = WrapImageSearcher<PdxBondPruner>(
          config, std::move(owned), std::move(store), std::move(pruner));
      break;
    }
  }
  if (searcher == nullptr) {
    return Status::Internal("MakeSearcherFromImage: unhandled pruner");
  }
  searcher->PinImage(std::move(image));
  return searcher;
}

Result<std::unique_ptr<Searcher>> MakeSearcher(const VectorSet& vectors,
                                               SearcherConfig config) {
  PDX_RETURN_IF_ERROR(ValidateSearcherConfig(config));
  if (vectors.empty()) {
    return Status::InvalidArgument("MakeSearcher: empty collection");
  }
  config = ResolveConfig(config);
  if (config.quantization == QuantizationKind::kU8) {
    return MakeQuantizedSearcher(vectors, std::move(config));
  }
  if (config.layout == SearcherLayout::kFlat) {
    return MakeFlatSearcher(vectors, std::move(config));
  }
  auto owned = std::make_unique<IvfIndex>(IvfIndex::Build(vectors, config.ivf));
  const IvfIndex& index = *owned;
  return MakeIvfSearcher(vectors, std::move(owned), index, std::move(config));
}

Result<std::unique_ptr<Searcher>> MakeSearcher(const VectorSet& vectors,
                                               const IvfIndex& index,
                                               SearcherConfig config) {
  PDX_RETURN_IF_ERROR(ValidateSearcherConfig(config));
  if (vectors.empty()) {
    return Status::InvalidArgument("MakeSearcher: empty collection");
  }
  if (config.layout != SearcherLayout::kIvf) {
    return Status::InvalidArgument(
        "MakeSearcher: an external IVF index requires layout = kIvf");
  }
  if (index.dim() != vectors.dim() || index.count() != vectors.count()) {
    return Status::InvalidArgument(
        "MakeSearcher: index was not built over this collection "
        "(dim/count mismatch)");
  }
  config = ResolveConfig(config);
  if (config.quantization == QuantizationKind::kU8) {
    return MakeQuantizedSearcher(vectors, index, std::move(config));
  }
  return MakeIvfSearcher(vectors, nullptr, index, std::move(config));
}

}  // namespace pdx
