#include "core/persist.h"

#include <utility>

namespace pdx {

SavedMeta MetaFromConfig(const SearcherConfig& config) {
  SavedMeta meta;
  meta.layout = static_cast<uint32_t>(config.layout);
  meta.pruner = static_cast<uint32_t>(config.pruner);
  meta.metric = static_cast<uint32_t>(config.metric);
  meta.k = config.k;
  meta.nprobe = config.nprobe;
  meta.block_capacity = config.block_capacity;
  meta.bond_order = static_cast<uint32_t>(
      config.bond_order.value_or(DimensionOrder::kDimensionZones));
  meta.bond_zone_size = static_cast<uint32_t>(config.bond_zone_size);
  meta.ads_epsilon0 = config.ads_epsilon0;
  meta.quantization = static_cast<uint32_t>(config.quantization);
  meta.rerank_factor = static_cast<uint32_t>(config.rerank_factor);
  meta.ads_seed = config.ads_seed;
  meta.bsa_multiplier = config.bsa_multiplier;
  meta.bsa_max_fit_samples = config.bsa_max_fit_samples;
  meta.ivf_num_buckets = config.ivf.num_buckets;
  meta.ivf_max_iterations = config.ivf.max_iterations;
  meta.ivf_seed = config.ivf.seed;
  meta.search_selection_fraction = config.search.selection_fraction;
  meta.search_adaptive_steps = config.search.adaptive_steps ? 1 : 0;
  meta.search_initial_step = config.search.initial_step;
  meta.search_fixed_step = config.search.fixed_step;
  return meta;
}

Status ConfigFromMeta(const SavedMeta& meta, SearcherConfig* config,
                      ShardingOptions* sharding, MutationConfig* mutation) {
  SearcherConfig out;
  out.layout = static_cast<SearcherLayout>(meta.layout);
  out.pruner = static_cast<PrunerKind>(meta.pruner);
  out.metric = static_cast<Metric>(meta.metric);
  out.k = meta.k;
  out.nprobe = meta.nprobe;
  out.block_capacity = meta.block_capacity;
  if (meta.bond_order >
      static_cast<uint32_t>(DimensionOrder::kDimensionZones)) {
    return Status::Corruption(
        "collection meta: unknown dimension-order value " +
        std::to_string(meta.bond_order));
  }
  out.bond_order = static_cast<DimensionOrder>(meta.bond_order);
  out.bond_zone_size = meta.bond_zone_size;
  out.ads_epsilon0 = meta.ads_epsilon0;
  // Former reserved fields: pre-quantization files carry zeros, which
  // decode to kNone / rerank_factor 0 (the latter is only read under kU8).
  if (meta.quantization > static_cast<uint32_t>(QuantizationKind::kU8)) {
    return Status::Corruption("collection meta: unknown quantization value " +
                              std::to_string(meta.quantization));
  }
  out.quantization = static_cast<QuantizationKind>(meta.quantization);
  out.rerank_factor = meta.rerank_factor;
  out.ads_seed = meta.ads_seed;
  out.bsa_multiplier = meta.bsa_multiplier;
  out.bsa_max_fit_samples = meta.bsa_max_fit_samples;
  out.ivf.num_buckets = meta.ivf_num_buckets;
  out.ivf.max_iterations = static_cast<int>(meta.ivf_max_iterations);
  out.ivf.seed = meta.ivf_seed;
  out.search.selection_fraction = meta.search_selection_fraction;
  out.search.adaptive_steps = meta.search_adaptive_steps != 0;
  out.search.initial_step = meta.search_initial_step;
  out.search.fixed_step = meta.search_fixed_step;
  out.search.k = out.k;
  out.search.metric = out.metric;
  // Re-validating here turns any enum bit-rot the checksums cannot
  // distinguish from intent (the file IS self-consistent) into a clean
  // failure before a searcher is built over it.
  PDX_RETURN_IF_ERROR(ValidateSearcherConfig(out));
  if (sharding != nullptr) {
    if (meta.assignment >
        static_cast<uint32_t>(ShardAssignment::kRoundRobin)) {
      return Status::Corruption(
          "collection meta: unknown shard-assignment value " +
          std::to_string(meta.assignment));
    }
    sharding->num_shards = meta.num_shards;
    sharding->assignment = static_cast<ShardAssignment>(meta.assignment);
  }
  if (mutation != nullptr) {
    mutation->compact_threshold = meta.compact_threshold;
    mutation->delta_block_capacity = meta.delta_block_capacity;
  }
  if (config != nullptr) *config = std::move(out);
  return Status::OK();
}

Result<LoadedCollection> LoadCollectionFromImage(
    std::shared_ptr<const CollectionImage> image) {
  LoadedCollection out;
  const SavedMeta& meta = image->meta();
  PDX_RETURN_IF_ERROR(
      ConfigFromMeta(meta, &out.config, &out.sharding, &out.mutation));
  out.source = image->source();
  out.mapped_bytes = image->mapped_bytes();
  out.file_bytes = image->file_bytes();

  if (meta.mutable_snapshot != 0) {
    auto restored = MutableSearcher::Restore(image, out.config, out.mutation,
                                             out.sharding);
    if (!restored.ok()) return restored.status();
    std::unique_ptr<MutableSearcher> live = std::move(restored).value();
    out.live = live.get();
    out.searcher = std::move(live);
  } else if (meta.num_shards > 1) {
    auto made =
        MakeShardedSearcherFromImage(std::move(image), out.config,
                                     out.sharding);
    if (!made.ok()) return made.status();
    out.searcher = std::move(made).value();
  } else {
    auto made = MakeSearcherFromImage(std::move(image), 0, out.config);
    if (!made.ok()) return made.status();
    out.searcher = std::move(made).value();
  }
  return out;
}

Result<LoadedCollection> LoadCollection(const std::string& path,
                                        LoadOptions options) {
  auto image = CollectionImage::Load(path, options.allow_mmap);
  if (!image.ok()) return image.status();
  return LoadCollectionFromImage(std::move(image).value());
}

}  // namespace pdx
