#include "core/sharded_searcher.h"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/timer.h"
#include "core/persist.h"
#include "storage/collection_format.h"

namespace pdx {

const char* ShardAssignmentName(ShardAssignment assignment) {
  switch (assignment) {
    case ShardAssignment::kContiguous:
      return "contiguous";
    case ShardAssignment::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

namespace {

/// Scatter-gather facade over N per-shard searchers (the IndexShards idea
/// from the Faiss library, over PDXearch shards): every query runs on every
/// shard, and only the k-sized per-shard result lists are merged — block
/// skipping inside each shard stays intact, ids are remapped to global.
class ShardedSearcher final : public Searcher {
 public:
  /// Global-id remap for one shard. A contiguous shard is just a base
  /// offset; only round-robin needs the explicit table — the distinction
  /// keeps the facade's footprint O(1) per vector count on the common
  /// contiguous assignment.
  struct ShardMap {
    VectorId base = 0;
    std::vector<VectorId> ids;  ///< Empty => global = base + local.
    VectorId Global(VectorId local) const {
      return ids.empty() ? base + local : ids[local];
    }
  };

  ShardedSearcher(SearcherConfig config,
                  std::vector<std::unique_ptr<Searcher>> shards,
                  std::vector<ShardMap> shard_maps, size_t total_count,
                  ShardAssignment assignment)
      : Searcher(std::move(config)),
        shards_(std::move(shards)),
        shard_maps_(std::move(shard_maps)),
        shard_dispatches_(shards_.size()),
        total_count_(total_count),
        assignment_(assignment) {}

  std::vector<Neighbor> Search(const float* query) override {
    PushKnobs();
    ThreadPool* pool = BatchPool();
    CountDispatches(1);
    if (pool == nullptr) return SearchSequential(query);

    // One task per shard: each shard searcher is driven by exactly one
    // worker, so the per-shard single-querier contract holds.
    const size_t num_shards = shards_.size();
    std::vector<std::vector<Neighbor>> partial(num_shards);
    pool->ParallelFor(num_shards, [&](size_t s, size_t) {
      partial[s] = shards_[s]->Search(query);
    });
    profile_ = PdxearchProfile{};
    for (const auto& shard : shards_) profile_ += shard->last_profile();
    return MergeShards(partial, config_.k);
  }

  std::vector<std::vector<Neighbor>> SearchBatch(const float* queries,
                                                 size_t num_queries) override {
    batch_profile_ = BatchProfile{};
    batch_profile_.queries = num_queries;
    std::vector<std::vector<Neighbor>> results(num_queries);
    if (num_queries == 0) return results;

    PushKnobs();
    const size_t num_shards = shards_.size();
    const size_t d = dim();
    ThreadPool* pool = BatchPool();
    CountDispatches(num_queries);

    if (pool == nullptr) {
      Timer wall;
      for (size_t q = 0; q < num_queries; ++q) {
        Timer per_query;
        results[q] = SearchSequential(queries + q * d);
        batch_profile_.latency.Record(per_query.ElapsedMillis());
        batch_profile_.Accumulate(profile_);
      }
      batch_profile_.wall_ms = wall.ElapsedMillis();
      return results;
    }

    // (shard x query) tiling: the task grid is every shard-query pair, so
    // one large batch against one collection saturates the whole pool.
    // Worker w always drives shard s through scratch slot w — distinct
    // (shard, slot) pairs never share engine state, so any interleaving of
    // claims is race-free. On this path the latency window holds
    // per-(shard, query) shard-search times, not whole-query times.
    const size_t workers = pool->num_threads();
    for (auto& shard : shards_) shard->ReserveScratch(workers);
    std::vector<std::vector<std::vector<Neighbor>>> partial(
        num_shards, std::vector<std::vector<Neighbor>>(num_queries));
    std::vector<BatchProfile> worker_profiles(workers);
    Timer wall;
    pool->ParallelFor(num_shards * num_queries, [&](size_t t, size_t w) {
      const size_t s = t / num_queries;
      const size_t q = t % num_queries;
      Timer per_task;
      PdxearchProfile profile;
      partial[s][q] = shards_[s]->SearchWith(w, queries + q * d, &profile);
      worker_profiles[w].latency.Record(per_task.ElapsedMillis());
      worker_profiles[w].Accumulate(profile);
    });
    std::vector<std::vector<Neighbor>> per_shard(num_shards);
    for (size_t q = 0; q < num_queries; ++q) {
      for (size_t s = 0; s < num_shards; ++s) {
        per_shard[s] = std::move(partial[s][q]);
      }
      results[q] = MergeShards(per_shard, config_.k);
    }
    batch_profile_.wall_ms = wall.ElapsedMillis();
    for (const BatchProfile& wp : worker_profiles) {
      batch_profile_.Accumulate(wp.sum);
      batch_profile_.latency.Merge(wp.latency);
    }
    return results;
  }

  void ReserveScratch(size_t slots) override {
    for (auto& shard : shards_) shard->ReserveScratch(slots);
  }

  using Searcher::SearchWith;

  std::vector<Neighbor> SearchWith(size_t slot, QueryKnobs knobs,
                                   const float* query,
                                   PdxearchProfile* profile) override {
    CountDispatches(1);
    return ScatterGather(slot, knobs, query, profile);
  }

  std::vector<std::vector<Neighbor>> SearchBatchWith(
      size_t slot, QueryKnobs knobs, const float* queries, size_t num_queries,
      BatchProfile* profile, SearchCounters* counters) override {
    BatchProfile local;
    local.queries = num_queries;
    std::vector<std::vector<Neighbor>> results(num_queries);
    if (num_queries == 0) {
      if (profile != nullptr) *profile = std::move(local);
      return results;
    }
    // Resolve defaults ONCE at the facade: the shards' construction-time
    // configs may be stale relative to facade-level set_k/set_nprobe, so
    // an unresolved (zero) knob must never reach them — a shard would
    // quietly fall back to ITS default while the merge used the facade's.
    knobs.k = knobs.k > 0 ? knobs.k : config_.k;
    knobs.nprobe = knobs.nprobe > 0 ? knobs.nprobe : config_.nprobe;
    const size_t num_shards = shards_.size();
    const size_t d = dim();
    const size_t k = knobs.k;
    ThreadPool* pool = BatchPool();
    CountDispatches(num_queries);

    if (pool == nullptr) {
      Timer wall;
      for (size_t q = 0; q < num_queries; ++q) {
        Timer per_query;
        PdxearchProfile query_profile;
        results[q] =
            ScatterGather(slot, knobs, queries + q * d, &query_profile);
        local.latency.Record(per_query.ElapsedMillis());
        local.Accumulate(query_profile);
        if (counters != nullptr) counters[q] = query_profile.counters();
      }
      local.wall_ms = wall.ElapsedMillis();
      if (profile != nullptr) *profile = std::move(local);
      return results;
    }

    // Same (shard x query) tiling as SearchBatch, shifted onto this call's
    // slot band: worker w of this loop drives every shard through slot
    // `slot + w`, so concurrent batches on disjoint bands never share a
    // shard engine and no shared knob is touched. Pre-growing on the
    // calling thread (a no-op once bands are reserved) keeps the workers'
    // lazy-growth path out of the parallel region.
    const size_t workers = pool->num_threads();
    for (auto& shard : shards_) shard->ReserveScratch(slot + workers);
    std::vector<std::vector<std::vector<Neighbor>>> partial(
        num_shards, std::vector<std::vector<Neighbor>>(num_queries));
    std::vector<BatchProfile> worker_profiles(workers);
    // Tasks for the SAME query run concurrently across shards, so the
    // per-query counters cannot be accumulated in place; each task drops
    // its share into its own (s, q) grid cell and the calling thread
    // reduces per query after the barrier. Allocated only when asked for —
    // and the sharded pool path already allocates its partial grids, so
    // this adds no new allocation class to the dispatch story.
    std::vector<SearchCounters> task_counters(
        counters != nullptr ? num_shards * num_queries : 0);
    Timer wall;
    pool->ParallelFor(num_shards * num_queries, [&](size_t t, size_t w) {
      const size_t s = t / num_queries;
      const size_t q = t % num_queries;
      Timer per_task;
      PdxearchProfile task_profile;
      partial[s][q] =
          shards_[s]->SearchWith(slot + w, knobs, queries + q * d,
                                 &task_profile);
      worker_profiles[w].latency.Record(per_task.ElapsedMillis());
      worker_profiles[w].Accumulate(task_profile);
      if (counters != nullptr) task_counters[t] = task_profile.counters();
    });
    std::vector<std::vector<Neighbor>> per_shard(num_shards);
    for (size_t q = 0; q < num_queries; ++q) {
      for (size_t s = 0; s < num_shards; ++s) {
        per_shard[s] = std::move(partial[s][q]);
      }
      results[q] = MergeShards(per_shard, k);
      if (counters != nullptr) {
        counters[q] = SearchCounters{};
        for (size_t s = 0; s < num_shards; ++s) {
          counters[q] += task_counters[s * num_queries + q];
        }
      }
    }
    local.wall_ms = wall.ElapsedMillis();
    for (const BatchProfile& wp : worker_profiles) {
      local.Accumulate(wp.sum);
      local.latency.Merge(wp.latency);
    }
    if (profile != nullptr) *profile = std::move(local);
    return results;
  }

  const PdxearchProfile& last_profile() const override { return profile_; }

  const PdxStore& store() const override { return shards_.front()->store(); }

  const IvfIndex* index() const override { return nullptr; }

  size_t count() const override { return total_count_; }

  /// Answered by the first shard directly (not via store()): quantized
  /// shards have no float PDX store to expose, but every shard knows its
  /// dimensionality.
  size_t dim() const override { return shards_.front()->dim(); }

  uint64_t quantized_bytes() const override {
    uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->quantized_bytes();
    return total;
  }

  size_t max_nprobe() const override {
    size_t ceiling = 1;
    for (const auto& shard : shards_) {
      ceiling = std::max(ceiling, shard->max_nprobe());
    }
    return ceiling;
  }

  size_t num_shards() const override { return shards_.size(); }

  Status ExportSaved(SavedCollection& out) const override {
    out = SavedCollection{};
    out.meta = MetaFromConfig(config_);
    out.meta.dim = dim();
    out.meta.count = total_count_;
    out.meta.num_shards = shards_.size();
    out.meta.assignment = static_cast<uint32_t>(assignment_);
    out.shards.reserve(shards_.size());
    // Each shard exports through its own facade; only the SavedShard is
    // kept (the per-shard meta is the facade's config minus sharding, and
    // this facade's meta above is authoritative).
    for (const auto& shard : shards_) {
      SavedCollection piece;
      PDX_RETURN_IF_ERROR(shard->ExportSaved(piece));
      if (piece.shards.size() != 1) {
        return Status::Internal(
            "sharded export: inner searcher exported an unexpected shape");
      }
      out.shards.push_back(std::move(piece.shards[0]));
    }
    return Status::OK();
  }

  std::vector<uint64_t> ShardDispatchCounts() const override {
    std::vector<uint64_t> counts(shard_dispatches_.size());
    for (size_t s = 0; s < counts.size(); ++s) {
      counts[s] = shard_dispatches_[s].load(std::memory_order_relaxed);
    }
    return counts;
  }

 private:
  /// Runtime knobs live on the facade (set_k/set_nprobe mutate config_);
  /// pushed down to every shard once per Search/SearchBatch call.
  void PushKnobs() {
    for (auto& shard : shards_) {
      shard->set_k(config_.k);
      if (config_.layout == SearcherLayout::kIvf) {
        shard->set_nprobe(config_.nprobe);
      }
    }
  }

  std::vector<Neighbor> SearchSequential(const float* query) {
    profile_ = PdxearchProfile{};
    std::vector<std::vector<Neighbor>> partial(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      partial[s] = shards_[s]->Search(query);
      profile_ += shards_[s]->last_profile();
    }
    return MergeShards(partial, config_.k);
  }

  /// One knob-explicit scatter-gather through slot `slot` of every shard,
  /// with no dispatch counting (callers count per their own granularity)
  /// and no shared-state mutation. Resolves default (zero) knobs against
  /// the FACADE config before forwarding — the shards' own defaults may
  /// be stale relative to facade-level set_k/set_nprobe.
  std::vector<Neighbor> ScatterGather(size_t slot, QueryKnobs knobs,
                                      const float* query,
                                      PdxearchProfile* profile) {
    knobs.k = knobs.k > 0 ? knobs.k : config_.k;
    knobs.nprobe = knobs.nprobe > 0 ? knobs.nprobe : config_.nprobe;
    std::vector<std::vector<Neighbor>> partial(shards_.size());
    PdxearchProfile sum;
    for (size_t s = 0; s < shards_.size(); ++s) {
      PdxearchProfile shard_profile;
      partial[s] = shards_[s]->SearchWith(
          slot, knobs, query, profile != nullptr ? &shard_profile : nullptr);
      if (profile != nullptr) sum += shard_profile;
    }
    if (profile != nullptr) *profile = sum;
    return MergeShards(partial, knobs.k);
  }

  /// Exact global top-k over the per-shard top-k lists, shard-local ids
  /// remapped to global. Ordered exactly as TopK::SortedResults orders the
  /// unsharded result (ascending distance, ties by id), so exact pruners
  /// stay byte-identical across shard counts. `k` is a parameter (not
  /// config_.k) so the knob-explicit paths never read mutable config.
  std::vector<Neighbor> MergeShards(
      const std::vector<std::vector<Neighbor>>& per_shard, size_t k) const {
    size_t total = 0;
    for (const auto& p : per_shard) total += p.size();
    std::vector<Neighbor> all;
    all.reserve(total);
    for (size_t s = 0; s < per_shard.size(); ++s) {
      const ShardMap& map = shard_maps_[s];
      for (const Neighbor& n : per_shard[s]) {
        all.push_back({map.Global(n.id), n.distance});
      }
    }
    std::sort(all.begin(), all.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.id < b.id;
              });
    if (all.size() > k) all.resize(k);
    return all;
  }

  void CountDispatches(size_t queries) {
    for (auto& counter : shard_dispatches_) {
      counter.fetch_add(queries, std::memory_order_relaxed);
    }
  }

  std::vector<std::unique_ptr<Searcher>> shards_;
  std::vector<ShardMap> shard_maps_;
  std::vector<std::atomic<uint64_t>> shard_dispatches_;
  size_t total_count_ = 0;
  ShardAssignment assignment_ = ShardAssignment::kContiguous;
  PdxearchProfile profile_;  ///< Shard-summed, most recent query.
};

/// The one home of the vector -> shard assignment, shared by the build
/// path (which slices the collection with it) and the load path (which
/// recomputes the id maps instead of persisting them) — the two must
/// agree or loaded sharded results would remap to the wrong global ids.
std::vector<std::vector<VectorId>> AssignShardIds(
    size_t count, size_t num_shards, ShardAssignment assignment) {
  std::vector<std::vector<VectorId>> shard_ids(num_shards);
  if (assignment == ShardAssignment::kContiguous) {
    // Balanced ranges: the first count % num_shards shards get one extra.
    size_t begin = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t len = count / num_shards + (s < count % num_shards ? 1 : 0);
      shard_ids[s].reserve(len);
      for (size_t i = 0; i < len; ++i) {
        shard_ids[s].push_back(static_cast<VectorId>(begin + i));
      }
      begin += len;
    }
  } else {
    for (auto& ids : shard_ids) ids.reserve(count / num_shards + 1);
    for (size_t i = 0; i < count; ++i) {
      shard_ids[i % num_shards].push_back(static_cast<VectorId>(i));
    }
  }
  return shard_ids;
}

/// Collapses the id lists into the compact per-shard remaps: a base offset
/// for contiguous shards, the explicit table only for round-robin.
std::vector<ShardedSearcher::ShardMap> MapsFromShardIds(
    ShardAssignment assignment,
    std::vector<std::vector<VectorId>>&& shard_ids) {
  std::vector<ShardedSearcher::ShardMap> maps(shard_ids.size());
  for (size_t s = 0; s < shard_ids.size(); ++s) {
    if (assignment == ShardAssignment::kContiguous) {
      maps[s].base = shard_ids[s].empty() ? 0 : shard_ids[s].front();
    } else {
      maps[s].ids = std::move(shard_ids[s]);
    }
  }
  return maps;
}

}  // namespace

Result<std::unique_ptr<Searcher>> MakeShardedSearcher(
    const VectorSet& vectors, SearcherConfig config,
    ShardingOptions sharding) {
  PDX_RETURN_IF_ERROR(ValidateSearcherConfig(config));
  if (vectors.empty()) {
    return Status::InvalidArgument("MakeShardedSearcher: empty collection");
  }
  if (sharding.num_shards == 0) {
    return Status::InvalidArgument(
        "ShardingOptions: num_shards must be > 0");
  }
  if (sharding.assignment != ShardAssignment::kContiguous &&
      sharding.assignment != ShardAssignment::kRoundRobin) {
    return Status::InvalidArgument(
        "ShardingOptions: unknown assignment value");
  }
  // Resolve at the facade so the config it carries — and persists via
  // ExportSaved — holds the concrete values the shards were built with,
  // not "default" markers a reload could re-interpret differently.
  config = ResolveConfig(std::move(config));
  const size_t count = vectors.count();
  const size_t num_shards = std::min(sharding.num_shards, count);
  if (num_shards == 1) return MakeSearcher(vectors, std::move(config));

  // Per-shard id lists feed VectorSet::Select; the retained remap is a
  // base offset for contiguous shards and the explicit list only for
  // round-robin.
  std::vector<std::vector<VectorId>> shard_ids =
      AssignShardIds(count, num_shards, sharding.assignment);

  // Shards are sequential leaves — the sharded facade owns all the
  // parallelism, so a shard must never pull the shared pool into a nested
  // loop of its own.
  SearcherConfig shard_config = config;
  shard_config.pool = nullptr;
  shard_config.threads = 1;

  std::vector<std::unique_ptr<Searcher>> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    // The slice (and the contiguous id list) is a temporary: searchers
    // copy everything they keep into their own PdxStore / pruner / index.
    const VectorSet slice = vectors.Select(shard_ids[s]);
    auto made = MakeSearcher(slice, shard_config);
    if (!made.ok()) return made.status();
    shards.push_back(std::move(made).value());
  }
  std::vector<ShardedSearcher::ShardMap> shard_maps =
      MapsFromShardIds(sharding.assignment, std::move(shard_ids));
  return std::unique_ptr<Searcher>(new ShardedSearcher(
      std::move(config), std::move(shards), std::move(shard_maps), count,
      sharding.assignment));
}

Result<std::unique_ptr<Searcher>> MakeShardedSearcherFromImage(
    std::shared_ptr<const CollectionImage> image, SearcherConfig config,
    ShardingOptions sharding) {
  PDX_RETURN_IF_ERROR(ValidateSearcherConfig(config));
  if (sharding.assignment != ShardAssignment::kContiguous &&
      sharding.assignment != ShardAssignment::kRoundRobin) {
    return Status::InvalidArgument(
        "ShardingOptions: unknown assignment value");
  }
  config = ResolveConfig(std::move(config));
  // The saved meta carries the ACTUAL shard count the build clamped to, so
  // unlike the build path there is no re-clamping against count here — the
  // file's sections are laid out for exactly this many units.
  const size_t count = image->meta().count;
  const size_t num_shards = sharding.num_shards;
  if (num_shards <= 1) {
    return MakeSearcherFromImage(std::move(image), 0, std::move(config));
  }

  SearcherConfig shard_config = config;
  shard_config.pool = nullptr;
  shard_config.threads = 1;

  std::vector<std::unique_ptr<Searcher>> shards;
  shards.reserve(num_shards);
  size_t restored = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    auto made = MakeSearcherFromImage(image, static_cast<uint32_t>(s),
                                      shard_config);
    if (!made.ok()) return made.status();
    restored += made.value()->count();
    shards.push_back(std::move(made).value());
  }
  if (restored != count) {
    return Status::Corruption(
        "sharded load: shard counts sum to " + std::to_string(restored) +
        " but collection meta says " + std::to_string(count));
  }

  // The maps are recomputed, not persisted: AssignShardIds is
  // deterministic in (count, num_shards, assignment), so these are the
  // same maps the saved searcher used.
  std::vector<ShardedSearcher::ShardMap> shard_maps = MapsFromShardIds(
      sharding.assignment,
      AssignShardIds(count, num_shards, sharding.assignment));
  std::unique_ptr<Searcher> searcher(new ShardedSearcher(
      std::move(config), std::move(shards), std::move(shard_maps), count,
      sharding.assignment));
  searcher->PinImage(std::move(image));
  return searcher;
}

}  // namespace pdx
