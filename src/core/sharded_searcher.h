#ifndef PDX_CORE_SHARDED_SEARCHER_H_
#define PDX_CORE_SHARDED_SEARCHER_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "core/any_searcher.h"
#include "storage/vector_set.h"

namespace pdx {

/// How MakeShardedSearcher assigns vectors to shards.
enum class ShardAssignment : uint8_t {
  /// Shard s owns one contiguous global-id range — preserves any locality
  /// already present in the ingestion order.
  kContiguous = 0,
  /// Vector i goes to shard i % num_shards — deliberately spreads hot
  /// ranges so every shard sees a similar slice of the distribution.
  kRoundRobin = 1,
};

const char* ShardAssignmentName(ShardAssignment assignment);

/// Knobs for splitting one logical collection across several searchers.
struct ShardingOptions {
  /// Shards to partition into. Must be > 0; silently clamped to the vector
  /// count so every shard holds at least one vector. 1 builds a plain
  /// (unsharded) searcher.
  size_t num_shards = 1;
  ShardAssignment assignment = ShardAssignment::kContiguous;
};

/// Partitions `vectors` into `sharding.num_shards` shards, builds one
/// searcher per shard through MakeSearcher (any layout x pruner — on kIvf
/// each shard builds its own IVF index over its slice with config.ivf),
/// and returns a facade that scatter-gathers every query:
///
///   - Search fans the query out to all shards — in parallel on
///     config.pool (or a lazily owned pool) when threads != 1, sequential
///     when threads == 1 — and merges the per-shard top-k heaps into one
///     exact global top-k, shard-local ids remapped to global ids. The
///     merge is the same (distance, id) order TopK::SortedResults emits,
///     so with an exact pruner the result is identical to the equivalent
///     unsharded searcher over the same data. One caveat at the k
///     boundary: when candidates are tied at *exactly* the k-th distance
///     (duplicate vectors), the unsharded heap keeps the first one its
///     visit order met while the merge keeps the lowest global id — the
///     distances returned are identical either way, the tied ids may not
///     be (same caveat as any scatter-gather merge, e.g. Faiss
///     IndexShards).
///   - SearchBatch tiles (shard x query) tasks over the pool via the
///     facade's per-slot scratch (Searcher::SearchWith), so one large
///     batch against one collection saturates the whole pool. Only
///     k-sized result lists cross shard boundaries.
///
/// The per-shard searchers are built sequential (threads = 1, no pool);
/// the sharded facade owns all parallelism, so nesting it under the
/// serving layer's one shared pool composes without pool cycles.
///
/// Thread safety matches the facade contract: one querier at a time on
/// the Search/SearchBatch surface (ShardDispatchCounts() alone may be
/// read concurrently), while the knob-explicit SearchWith/SearchBatchWith
/// family supports concurrent callers on disjoint, pre-reserved slot
/// bands — each call pushes k/nprobe down to the shards per call, so no
/// shared knob is mutated (the serving layer's replicated dispatchers
/// rely on this).
Result<std::unique_ptr<Searcher>> MakeShardedSearcher(
    const VectorSet& vectors, SearcherConfig config,
    ShardingOptions sharding);

}  // namespace pdx

#endif  // PDX_CORE_SHARDED_SEARCHER_H_
