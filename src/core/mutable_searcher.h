#ifndef PDX_CORE_MUTABLE_SEARCHER_H_
#define PDX_CORE_MUTABLE_SEARCHER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/any_searcher.h"
#include "core/sharded_searcher.h"
#include "storage/delta_store.h"
#include "storage/vector_set.h"

namespace pdx {

class CollectionImage;
struct SavedCollection;

/// Knobs for the live-collection machinery.
struct MutationConfig {
  /// Background-compaction trigger: once the delta region (or the tombstone
  /// count) reaches this many vectors, the owner should fold the delta into
  /// a freshly built base. 0 disables the trigger (NeedsCompaction() stays
  /// false; explicit Compact() still works).
  size_t compact_threshold = 16384;
  /// Lanes per delta PDX block; 0 = kPdxBlockSize. Appends repack one block
  /// of this size, so it bounds per-append work (and the paper's Section 3
  /// repack story argues for keeping it small).
  size_t delta_block_capacity = 0;
};

/// Point-in-time shape of a mutable collection.
struct MutationStats {
  size_t live = 0;         ///< Searchable vectors (appended minus deleted).
  size_t base_rows = 0;    ///< Rows in the immutable base searcher.
  size_t delta_rows = 0;   ///< Rows in the append delta region.
  size_t base_blocks = 0;  ///< PDX blocks in the base store.
  size_t delta_blocks = 0;
  size_t tombstones = 0;   ///< Dead slots awaiting compaction (base + delta).
  uint64_t compactions = 0;  ///< Completed Compact() calls, lifetime.
};

/// A `Searcher` that accepts Add/Delete/upsert while being queried, with no
/// full rebuild on the mutation path — the paper's Section 3 "Inserts and
/// Updates" argument turned into a serving-grade facade.
///
/// Structure: an immutable base (a plain MakeSearcher/MakeShardedSearcher
/// product over the rows that existed at build time), an append-only
/// DeltaStore of PDX blocks whose partial tail repacks in place, a tombstone
/// overlay, and an external-id <-> slot map. A query runs the base searcher
/// with k widened by the base tombstone count, linear-scans the delta blocks
/// with the dispatched PDX kernel, drops dead slots, and merges one exact
/// top-k. Because the vertical kernels accumulate per lane in ascending
/// dimension order (and are compiled with -ffp-contract=off), a vector's
/// distance is bit-identical whether it sits in the base or the delta — so
/// for exact pruners (kLinear always; kBond under
/// DimensionOrder::kSequential) results are byte-identical to a fresh
/// rebuild over the surviving rows, which the parity tests pin. BOND under
/// the data-dependent default orders and ADSampling/BSA stay id-exact /
/// approximate respectively, matching their single-searcher contracts.
///
/// Compact() folds delta + survivors into a new base built OFF-lock, then
/// swaps it in under an exclusive lock, reconciling any adds/deletes that
/// raced the build. Ingest cost is O(delta_block_capacity x dim) per append
/// — independent of base size; only compaction pays the rebuild, and the
/// serving layer runs that on a background thread.
///
/// Thread safety goes beyond the base facade: Add/Delete/Compact may run
/// concurrently with SearchWith/SearchBatchWith from any number of
/// dispatcher threads (reader-writer lock inside). The inherited
/// single-querier restriction still applies to the plain Search/SearchBatch
/// surface: one querier at a time there, though mutations may interleave.
///
/// External ids are uint64 at the API (wire-friendly) but must fit VectorId
/// (< kInvalidVectorId), since merged results carry them in Neighbor::id.
class MutableSearcher final : public Searcher {
 public:
  /// Builds a mutable collection over `vectors` (copied — unlike the plain
  /// factories, the caller's set may die immediately). Initial external ids
  /// are 0..count-1, matching row order. With sharding.num_shards > 1 the
  /// base is a sharded scatter-gather searcher; appends land in one shared
  /// delta region and compaction re-spreads all rows across shards via the
  /// configured assignment (so shard sizes re-balance at each compaction
  /// rather than per append).
  static Result<std::unique_ptr<MutableSearcher>> Make(
      const VectorSet& vectors, SearcherConfig config,
      MutationConfig mutation = {}, ShardingOptions sharding = {});

  /// Rebuilds a live collection from a mutable snapshot (a file written by
  /// Save with meta.mutable_snapshot = 1): the base searcher restores as
  /// zero-copy views over the image with no k-means or packing, then the
  /// delta rows, tombstone bitmap, and id maps are replayed on top —
  /// searches resume exactly where the saved collection left off,
  /// mid-delta and all. `config`/`mutation`/`sharding` must be the triple
  /// decoded from the image's meta (ConfigFromMeta).
  static Result<std::unique_ptr<MutableSearcher>> Restore(
      std::shared_ptr<const CollectionImage> image, SearcherConfig config,
      MutationConfig mutation, ShardingOptions sharding);

  // -- Mutation surface -----------------------------------------------------

  /// Appends `count` row-major `dim()`-float rows. With `ids` == nullptr
  /// each row gets the next auto id (max assigned id + 1); with `ids`,
  /// ids[i] names row i and an existing id is an upsert: the old vector is
  /// tombstoned and the row appended under the same id. Validation is
  /// all-or-nothing; on success returns the assigned ids in row order.
  Result<std::vector<uint64_t>> Add(const float* rows, size_t count,
                                    const uint64_t* ids = nullptr);

  /// Tombstones the vector with external id `id`; NotFound if absent.
  Status Delete(uint64_t id);

  /// Batch delete; ids not present are reported through `missing` (when
  /// non-null) instead of failing the batch. Returns the number deleted.
  size_t DeleteBatch(const uint64_t* ids, size_t count,
                     std::vector<uint64_t>* missing = nullptr);

  /// True once delta rows or tombstones reached compact_threshold (> 0).
  bool NeedsCompaction() const;

  /// Folds the delta into a freshly built base over the surviving rows and
  /// clears tombstones. The expensive build runs without blocking searches
  /// or mutations; only the final swap takes the exclusive lock, where
  /// mutations that raced the build are carried over (re-tombstoned /
  /// re-appended to a fresh delta). Concurrent Compact() calls serialize.
  /// With zero survivors the old base is kept (every slot stays
  /// tombstoned); the searcher remains correct and empty-resulted.
  Status Compact();

  MutationStats mutation_stats() const;

  // -- Persistence surface --------------------------------------------------

  /// Snapshots the whole live state — base, delta, tombstones, id maps —
  /// into one collection file. Runs under the shared lock (the export
  /// borrows pointers into live arenas, so the write must too): searches
  /// keep flowing; mutations wait for the write. The result restores via
  /// Restore / LoadCollection.
  Status Save(const std::string& path) const override;
  Status ExportSaved(SavedCollection& out) const override;

  // -- Searcher surface -----------------------------------------------------

  std::vector<Neighbor> Search(const float* query) override;
  /// Sequential per-query loop (exactness is the point of this facade;
  /// batch throughput goes through SearchBatchWith as in the serving
  /// layer).
  std::vector<std::vector<Neighbor>> SearchBatch(const float* queries,
                                                 size_t num_queries) override;
  const PdxearchProfile& last_profile() const override { return profile_; }

  using Searcher::SearchWith;
  std::vector<Neighbor> SearchWith(size_t slot, QueryKnobs knobs,
                                   const float* query,
                                   PdxearchProfile* profile) override;
  std::vector<std::vector<Neighbor>> SearchBatchWith(
      size_t slot, QueryKnobs knobs, const float* queries, size_t num_queries,
      BatchProfile* profile, SearchCounters* counters) override;
  void ReserveScratch(size_t slots) override;

  /// The current base searcher's store. The reference is only stable while
  /// no compaction runs; prefer count()/dim() for metadata.
  const PdxStore& store() const override;
  const IvfIndex* index() const override;
  /// Live vectors (base + delta - tombstones).
  size_t count() const override;
  size_t max_nprobe() const override;
  size_t num_shards() const override;
  std::vector<uint64_t> ShardDispatchCounts() const override;
  size_t dim() const override { return dim_; }

 private:
  MutableSearcher(SearcherConfig config, MutationConfig mutation,
                  ShardingOptions sharding, std::unique_ptr<Searcher> inner,
                  VectorSet base_rows);

  Status ExportSavedLocked(SavedCollection& out) const;

  size_t LiveCountLocked() const {
    return slot_ids_.size() - base_dead_ - delta_dead_;
  }
  const float* RowLocked(size_t slot) const {
    return slot < base_count_ ? base_rows_.Vector(slot)
                              : delta_.rows().Vector(slot - base_count_);
  }
  void TombstoneLocked(size_t slot);
  Status ValidateAddLocked(const float* rows, size_t count,
                           const uint64_t* ids) const;
  /// Filters tombstones out of base results, scans the delta blocks, and
  /// merges one exact top-`k` (slot-id space). `base` carries base-slot
  /// ids; the returned list carries external ids. Adds the delta scan work
  /// to `counters` when non-null.
  std::vector<Neighbor> MergeLocked(std::vector<Neighbor> base,
                                    const float* query, size_t k,
                                    SearchCounters* counters) const;

  /// Guards all mutable state below. Searches take it shared, mutations and
  /// the compaction swap take it exclusive. Lock order with owners: any
  /// external mutex (e.g. the service mutex) first, this lock second —
  /// Compact() releases it before returning.
  mutable std::shared_mutex state_mutex_;
  /// Serializes whole Compact() calls (snapshot -> build -> swap).
  std::mutex compact_mutex_;

  MutationConfig mutation_;
  ShardingOptions sharding_;
  std::unique_ptr<Searcher> inner_;  ///< Base searcher over base_rows_.
  VectorSet base_rows_;              ///< Horizontal copy: compaction source.
  size_t base_count_ = 0;
  DeltaStore delta_;  ///< Slots [base_count_, base_count_ + delta count).
  std::vector<uint64_t> slot_ids_;                 ///< slot -> external id.
  std::unordered_map<uint64_t, size_t> id_to_slot_;  ///< Live ids only.
  std::vector<uint8_t> dead_;                      ///< Tombstone bitmap.
  size_t base_dead_ = 0;
  size_t delta_dead_ = 0;
  uint64_t next_auto_id_ = 0;
  uint64_t compactions_ = 0;
  size_t reserved_slots_ = 0;
  size_t dim_ = 0;
  PdxearchProfile profile_;  ///< last_profile() storage (Search surface).
};

}  // namespace pdx

#endif  // PDX_CORE_MUTABLE_SEARCHER_H_
