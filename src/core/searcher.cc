#include "core/searcher.h"

#include <algorithm>
#include <utility>

namespace pdx {

std::unique_ptr<AdsIvfSearcher> MakeAdsIvfSearcher(const VectorSet& vectors,
                                                   const IvfIndex& index,
                                                   const AdsConfig& config) {
  AdSamplingPruner pruner(vectors.dim(), config.epsilon0, config.seed);
  VectorSet rotated = pruner.TransformCollection(vectors);
  PdxStore store =
      PdxStore::FromGroups(rotated, index.buckets(), config.block_capacity);
  pruner.BuildAux(store);
  return std::make_unique<AdsIvfSearcher>(&index, std::move(store),
                                          std::move(pruner), config.search);
}

std::unique_ptr<BsaIvfSearcher> MakeBsaIvfSearcher(const VectorSet& vectors,
                                                   const IvfIndex& index,
                                                   const BsaConfig& config) {
  BsaPruner pruner(vectors, config.multiplier, config.max_fit_samples);
  VectorSet projected = pruner.TransformCollection(vectors);
  PdxStore store =
      PdxStore::FromGroups(projected, index.buckets(), config.block_capacity);
  pruner.BuildAux(store);
  return std::make_unique<BsaIvfSearcher>(&index, std::move(store),
                                          std::move(pruner), config.search);
}

std::unique_ptr<BondIvfSearcher> MakeBondIvfSearcher(
    const VectorSet& vectors, const IvfIndex& index,
    const BondConfig& config) {
  PdxStore store =
      PdxStore::FromGroups(vectors, index.buckets(), config.block_capacity);
  PdxBondPruner pruner(store.stats().means, config.order, config.zone_size);
  pruner.BuildAux(store);
  return std::make_unique<BondIvfSearcher>(&index, std::move(store),
                                           std::move(pruner), config.search);
}

std::unique_ptr<LinearIvfSearcher> MakeLinearIvfSearcher(
    const VectorSet& vectors, const IvfIndex& index,
    const PdxearchOptions& search, size_t block_capacity) {
  PdxStore store =
      PdxStore::FromGroups(vectors, index.buckets(), block_capacity);
  return std::make_unique<LinearIvfSearcher>(&index, std::move(store),
                                             NoPruner{}, search);
}

BondConfig DefaultFlatBondConfig() {
  BondConfig config;
  config.order = DimensionOrder::kDistanceToMeans;
  config.block_capacity = kExactSearchBlockCapacity;
  return config;
}

std::unique_ptr<BondFlatSearcher> MakeBondFlatSearcher(
    const VectorSet& vectors, BondConfig config) {
  PdxStore store = PdxStore::FromVectorSet(vectors, config.block_capacity);
  PdxBondPruner pruner(store.stats().means, config.order, config.zone_size);
  pruner.BuildAux(store);
  return std::make_unique<BondFlatSearcher>(std::move(store),
                                            std::move(pruner), config.search);
}

std::unique_ptr<AdsFlatSearcher> MakeAdsFlatSearcher(const VectorSet& vectors,
                                                     const AdsConfig& config) {
  AdSamplingPruner pruner(vectors.dim(), config.epsilon0, config.seed);
  VectorSet rotated = pruner.TransformCollection(vectors);
  PdxStore store = PdxStore::FromVectorSet(rotated, config.block_capacity);
  pruner.BuildAux(store);
  return std::make_unique<AdsFlatSearcher>(std::move(store),
                                           std::move(pruner), config.search);
}

std::unique_ptr<BsaFlatSearcher> MakeBsaFlatSearcher(const VectorSet& vectors,
                                                     const BsaConfig& config) {
  BsaPruner pruner(vectors, config.multiplier, config.max_fit_samples);
  VectorSet projected = pruner.TransformCollection(vectors);
  PdxStore store = PdxStore::FromVectorSet(projected, config.block_capacity);
  pruner.BuildAux(store);
  return std::make_unique<BsaFlatSearcher>(std::move(store),
                                           std::move(pruner), config.search);
}

std::unique_ptr<LinearFlatSearcher> MakeLinearFlatSearcher(
    const VectorSet& vectors, const PdxearchOptions& search,
    size_t block_capacity) {
  PdxStore store = PdxStore::FromVectorSet(vectors, block_capacity);
  return std::make_unique<LinearFlatSearcher>(std::move(store), NoPruner{},
                                              search);
}

std::vector<Neighbor> IvfNarySearch(const IvfIndex& index,
                                    const BucketOrderedSet& data,
                                    const float* query, size_t k,
                                    size_t nprobe, Metric metric, Isa isa) {
  const PairKernelFn kernel = GetNaryKernel(metric, isa);
  const std::vector<uint32_t> ranked = index.RankBucketsNary(query);
  const size_t probes = std::min(nprobe, ranked.size());
  const size_t dim = data.vectors.dim();
  TopK heap(k);
  for (size_t r = 0; r < probes; ++r) {
    const uint32_t b = ranked[r];
    for (size_t pos = data.offsets[b]; pos < data.offsets[b + 1]; ++pos) {
      heap.Push(data.ids[pos],
                kernel(query, data.vectors.Vector(
                                  static_cast<VectorId>(pos)),
                       dim));
    }
  }
  return heap.SortedResults();
}

}  // namespace pdx
