#include "core/pruning_trace.h"

#include <cassert>

namespace pdx {

PruningTrace::PruningTrace(size_t dim)
    : dim_(dim), alive_sum_(dim + 1, 0), observed_(dim + 1, 0) {}

void PruningTrace::Observe(size_t dims_scanned, size_t alive,
                           size_t block_count) {
  assert(dims_scanned <= dim_);
  if (dims_scanned == 0) {
    warmup_vectors_ += block_count;
    return;
  }
  alive_sum_[dims_scanned] += alive;
  observed_[dims_scanned] = 1;
}

void PruningTrace::Clear() {
  warmup_vectors_ = 0;
  alive_sum_.assign(dim_ + 1, 0);
  observed_.assign(dim_ + 1, 0);
}

double PruningTrace::AliveFraction(size_t d) const {
  if (warmup_vectors_ == 0) return 1.0;
  // Carry the last observed depth <= d forward (blocks share the same
  // deterministic step schedule; unobserved depths fall between steps).
  uint64_t alive = warmup_vectors_;
  for (size_t i = 1; i <= d && i <= dim_; ++i) {
    if (observed_[i]) alive = alive_sum_[i];
  }
  return double(alive) / double(warmup_vectors_);
}

std::vector<double> PruningTrace::Curve() const {
  std::vector<double> curve(dim_, 1.0);
  if (warmup_vectors_ == 0) return curve;
  uint64_t alive = warmup_vectors_;
  for (size_t d = 1; d <= dim_; ++d) {
    if (observed_[d]) alive = alive_sum_[d];
    curve[d - 1] = double(alive) / double(warmup_vectors_);
  }
  return curve;
}

double PruningTrace::ValuesAvoided() const {
  if (warmup_vectors_ == 0 || dim_ == 0) return 0.0;
  // Values needed at depth d (1-based) = vectors alive after d-1 dims.
  uint64_t alive = warmup_vectors_;
  double scanned = 0.0;
  for (size_t d = 1; d <= dim_; ++d) {
    scanned += double(alive);
    if (observed_[d]) alive = alive_sum_[d];
  }
  return 1.0 - scanned / (double(warmup_vectors_) * double(dim_));
}

}  // namespace pdx
