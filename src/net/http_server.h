#ifndef PDX_NET_HTTP_SERVER_H_
#define PDX_NET_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace pdx {

/// One parsed HTTP/1.1 request, as handed to the handler. Header names are
/// lower-cased at parse time (HTTP headers are case-insensitive on the
/// wire); the body is fully read before the handler runs.
struct HttpRequest {
  std::string method;  ///< Uppercase verb: "GET", "POST", ...
  std::string path;    ///< Request target before any '?', percent-unescaped NOT applied.
  std::string query;   ///< Raw query string after '?', empty when absent.
  std::map<std::string, std::string> headers;  ///< Lower-cased names.
  std::string body;
};

/// The response a handler completes a request with. Content-Length and the
/// Connection header are the server's business; everything else rides in
/// `headers` (e.g. Retry-After on a 429).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::map<std::string, std::string> headers;
  std::string body;
};

/// One-shot completion handle for a request: call exactly once, from any
/// thread — the handler's thread or a SearchService callback. Extra calls
/// are ignored (first writer wins), and a responder outliving its
/// connection (client hung up, server stopped) degrades to a no-op, so an
/// async search completing after disconnect is safe. This indirection is
/// what lets connection threads hand a /search request to the service and
/// go straight back to reading the next pipelined request instead of
/// blocking on the search.
using HttpResponder = std::function<void(HttpResponse)>;

/// Request handler: runs on the connection's thread, must not block on
/// long work — kick the work off and let it complete `respond` later.
/// Responses are delivered to the client in request order per connection
/// (HTTP/1.1 pipelining), whatever order the responders fire in.
using HttpHandler = std::function<void(HttpRequest, HttpResponder)>;

struct HttpServerConfig {
  /// Port to bind; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Bind address. The default serves loopback only — this is a front end
  /// for tests/benches/demos, not a hardened public listener.
  std::string bind_address = "127.0.0.1";
  /// Listen backlog handed to ::listen.
  int backlog = 64;
  /// Concurrent connections; accepts beyond this are answered 503 and
  /// closed before a connection thread is spawned.
  size_t max_connections = 64;
  /// Bodies above this are answered 413 without buffering the excess
  /// (admission control for memory, the wire analog of max_pending).
  size_t max_body_bytes = 32u << 20;
  /// Request line + headers above this are answered 431 and the
  /// connection closed.
  size_t max_header_bytes = 16u << 10;
  /// Unanswered pipelined requests per connection before the reader stops
  /// reading until responses drain — bounds per-connection memory under a
  /// client that pipelines faster than searches complete.
  size_t max_pipelined = 64;
  /// SO_SNDTIMEO on every accepted socket: a client that stops reading its
  /// responses can stall a blocking send for at most this long before the
  /// connection is dropped. Response flushes run on whichever thread
  /// completes the slot — often a SearchService dispatcher — so an
  /// unbounded send would park the serving layer behind one dead client.
  /// <= 0 disables the bound.
  std::chrono::seconds send_timeout{30};
};

/// A small dependency-free HTTP/1.1 server on POSIX sockets: one accept
/// thread, one thread per live connection (bounded by max_connections),
/// keep-alive and pipelining supported, responses completed asynchronously
/// through HttpResponder and written strictly in request order.
///
/// Protocol subset — deliberately: GET/POST/PUT/DELETE with
/// Content-Length bodies. Transfer-Encoding (chunked) is answered 501.
/// Expect: 100-continue gets an interim "100 Continue" only when the
/// connection is quiescent (no pipelined responses outstanding — an
/// interim line must not interleave with an in-flight response write);
/// otherwise the server just reads the body, which RFC 7231 permits and
/// clients handle via their continue timeout. HTTP/1.0 clients get
/// Connection: close semantics.
///
/// Thread safety: Start/Stop from one controlling thread; handlers and
/// responders run on/against internal threads as documented above.
class HttpServer {
 public:
  explicit HttpServer(HttpServerConfig config = {});
  ~HttpServer();  ///< Calls Stop().

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept thread. Fails with IoError when
  /// the socket/bind/listen fails (e.g. port in use). `handler` is invoked
  /// for every well-formed request; protocol violations are answered by
  /// the server itself (400/413/431/501/503).
  Status Start(HttpHandler handler);

  /// Stops accepting, shuts every connection socket, joins every thread.
  /// In-flight responders may still fire afterwards; they no-op. Idempotent.
  void Stop();

  /// The bound port (the ephemeral one when config.port was 0); 0 before
  /// Start.
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(); }

  /// Live connection count (diagnostics; racy by nature).
  size_t connection_count() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  /// Joins finished connection threads and drops their slots. Called from
  /// the accept loop (steady state) and Stop (finally).
  void ReapConnectionsLocked();

  const HttpServerConfig config_;
  HttpHandler handler_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
};

/// Maps a Status onto the HTTP status code the wire front end answers
/// with. The serving-layer codes map one-to-one so a client can tell
/// backpressure (429, retry later) from a missed deadline (504) from a
/// missing collection (404):
///   kOk -> 200, kInvalidArgument -> 400, kNotFound -> 404,
///   kResourceExhausted -> 429, kDeadlineExceeded -> 504,
///   kCancelled -> 503 (shutting down / collection yanked: retryable),
///   kUnsupported -> 501, everything else -> 500.
int HttpStatusFromStatus(const Status& status);

/// Human name for an HTTP status code ("OK", "Too Many Requests", ...).
const char* HttpReasonPhrase(int status);

}  // namespace pdx

#endif  // PDX_NET_HTTP_SERVER_H_
