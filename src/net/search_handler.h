#ifndef PDX_NET_SEARCH_HANDLER_H_
#define PDX_NET_SEARCH_HANDLER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "net/http_server.h"
#include "net/json.h"
#include "serve/search_service.h"

namespace pdx {

/// Maps the REST surface onto a SearchService — the glue between
/// HttpServer's transport and the serving layer:
///
///   POST   /collections/<name>/search       search (single or batched)
///   PUT    /collections/<name>              build + host from a JSON payload
///   DELETE /collections/<name>              unhost
///   POST   /collections/<name>/vectors      streaming ingest (add/upsert)
///   DELETE /collections/<name>/vectors/<id> tombstone one vector by id
///   POST   /collections/<name>/save         persist to a collection file
///   PUT    /collections/<name>/load         restore from a collection file
///   GET    /collections                     hosted names
///   GET    /collections/<name>              collection shape (dim, count, ...)
///   GET    /collections/<name>/slowlog      worst-latency queries, worst first
///   GET    /stats                           one ServiceStats snapshot
///   GET    /metrics                         Prometheus text exposition
///   GET    /healthz                         liveness + queue depth + counts
///
/// Every response carries an X-Request-Id header: the client's own (from
/// the request's X-Request-Id, clamped and sanitized) or one the handler
/// mints. A search submitted with "trace": true threads that id into the
/// service's QueryTrace, so the wire response's "trace" object, the
/// slowlog entry, and the client's logs all correlate on one id.
///
/// Search requests ride SearchService::Submit's callback flavor: Handle
/// returns the moment the query is admitted, and the HttpResponder fires
/// from the service's dispatcher thread when the result is ready — the
/// connection thread never blocks on a search. Control-plane requests
/// (PUT builds an index) run synchronously on the connection thread.
///
/// Error mapping (HttpStatusFromStatus): kNotFound -> 404,
/// kInvalidArgument -> 400, kResourceExhausted -> 429 + Retry-After,
/// kDeadlineExceeded -> 504, kCancelled -> 503. Error bodies are
/// {"error": <message>, "status": <StatusCodeName>}.
///
/// Search request body:
///   {"query": [f, ...]}          one query, or
///   {"queries": [[f, ...], ...]} a batch;
///   plus optional "k", "nprobe" (0/absent = collection default),
///   "deadline_ms" (admission-relative deadline; late queries are shed
///   with 504) and "trace" (true = each result carries a "trace" object
///   with the per-stage ms breakdown and the search-work counters).
///   Batched responses carry one entry per query in order; the
///   HTTP status is 200 when every query succeeded, else the mapping of
///   the first failure.
///
/// PUT body: {"vectors": [[f, ...], ...], "layout": "flat"|"ivf",
/// "pruner": "linear"|"adsampling"|"bsa"|"bond", "metric": "l2"|"ip"|"l1",
/// "k": n, "nprobe": n, "shards": n, "assignment":
/// "contiguous"|"round-robin", "block_capacity": n}. Everything but
/// "vectors" is optional. PUT to an existing name replaces it (queries
/// queued for the old collection complete with 503). Replacement resets
/// the per-collection slowlog (it describes the hosted searcher, which is
/// new) while the Prometheus counters keep their cumulative series.
///
/// Ingest body (POST /collections/<name>/vectors) — two formats:
///   - NDJSON (newline-delimited, one row per line — streams past the
///     whole-body JSON size cap): each line is either a plain float array
///     [f, ...] or an object {"id": n, "vector": [f, ...]}; blank lines
///     are skipped.
///   - A single JSON object {"vectors": [[f, ...], ...], "ids": [n, ...]}
///     with "ids" optional (handy for small batches; subject to
///     HttpServerConfig::max_body_bytes like every body).
/// Either every row carries an id or none does (400 otherwise). Without
/// ids rows get auto-assigned ids (returned in the response); with ids an
/// existing id is an UPSERT — the old vector is replaced atomically under
/// the same id. Ids must be integers in [0, 4294967295). Mutations only
/// apply to collections the service built from vectors (PUT or
/// AddCollection-from-vectors); adopted/index-backed searchers answer 501.
///
/// Persistence (save body: {"path": "..."}; load body: {"path": "...",
/// "mmap": true}). Save writes the hosted collection to one self-contained
/// file and marks the collection persistent — the background compactor
/// re-saves to the same path after every fold. Load restores the file and
/// hosts it under <name>, replacing any existing collection like PUT does;
/// "mmap" (default true) serves the packed stores straight off a memory
/// mapping instead of heap copies. The restored shape answers as 201 with
/// the same body as PUT, including "source" ("mmap" or "loaded").
///
/// Thread safety: Handle may run on any number of connection threads
/// concurrently (the service is the synchronization point). The handler
/// must outlive the HttpServer it is registered with.
class SearchHandler {
 public:
  explicit SearchHandler(SearchService& service) : service_(service) {}

  SearchHandler(const SearchHandler&) = delete;
  SearchHandler& operator=(const SearchHandler&) = delete;

  /// The HttpHandler entry point (bind via AsHttpHandler).
  void Handle(HttpRequest request, HttpResponder respond);

  /// Adapter for HttpServer::Start. The returned callable references this
  /// handler; stop the server before destroying the handler.
  HttpHandler AsHttpHandler() {
    return [this](HttpRequest request, HttpResponder respond) {
      Handle(std::move(request), std::move(respond));
    };
  }

 private:
  void HandleSearch(const std::string& collection, const HttpRequest& request,
                    const std::string& request_id, HttpResponder respond);
  void HandlePut(const std::string& collection, const HttpRequest& request,
                 HttpResponder respond);
  void HandleDelete(const std::string& collection, HttpResponder respond);
  void HandleAddVectors(const std::string& collection,
                        const HttpRequest& request, HttpResponder respond);
  void HandleDeleteVector(const std::string& collection,
                          const std::string& id_text, HttpResponder respond);
  void HandleSave(const std::string& collection, const HttpRequest& request,
                  HttpResponder respond);
  void HandleLoad(const std::string& collection, const HttpRequest& request,
                  HttpResponder respond);
  void HandleGetCollection(const std::string& collection,
                           HttpResponder respond);
  void HandleSlowlog(const std::string& collection, HttpResponder respond);
  void HandleListCollections(HttpResponder respond);
  void HandleStats(HttpResponder respond);
  void HandleMetrics(HttpResponder respond);
  void HandleHealthz(HttpResponder respond);
  /// The request's sanitized X-Request-Id, or a freshly minted one.
  std::string ResolveRequestId(const HttpRequest& request);

  SearchService& service_;
  std::atomic<uint64_t> request_seq_{0};  ///< Feeds minted request ids.
};

/// The error-body shape every endpoint shares; exposed for tests.
HttpResponse MakeErrorResponse(const Status& status);

}  // namespace pdx

#endif  // PDX_NET_SEARCH_HANDLER_H_
