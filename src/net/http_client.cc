#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/wire_util.h"

namespace pdx {

namespace {

using net_internal::ToLower;

}  // namespace

HttpClient::~HttpClient() { Close(); }

Status HttpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  // The pipelined tests send many small requests; batching them behind
  // Nagle would serialize the pipeline on round trips.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status failed =
        Status::IoError(std::string("connect: ") + std::strerror(errno));
    Close();
    return failed;
  }
  return Status::OK();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inflight_ = 0;
  buffer_.clear();
}

Status HttpClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  if (!net_internal::SendAll(fd_, bytes)) {
    return Status::IoError(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status HttpClient::SendRequest(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::map<std::string, std::string>& headers) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: pdx\r\n";
  for (const auto& [name, value] : headers) {
    wire += name + ": " + value + "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;
  PDX_RETURN_IF_ERROR(SendRaw(wire));
  ++inflight_;
  return Status::OK();
}

Result<HttpResponse> HttpClient::ReadResponse() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  char chunk[64 * 1024];
  // Frame the head.
  size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IoError("connection closed mid-response");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  const std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + 4);

  HttpResponse response;
  const size_t line_end = head.find("\r\n");
  const std::string status_line = head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  const size_t first_space = status_line.find(' ');
  if (first_space == std::string::npos) {
    return Status::IoError("malformed status line: " + status_line);
  }
  response.status = std::atoi(status_line.c_str() + first_space + 1);

  size_t content_length = 0;
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    const size_t eol = head.find("\r\n", pos);
    const std::string line = head.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? head.size() : eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = ToLower(line.substr(0, colon));
    std::string value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.erase(value.begin());
    }
    if (name == "content-length") {
      content_length = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (name == "content-type") {
      response.content_type = value;
    } else {
      response.headers[name] = value;
    }
  }

  while (buffer_.size() < content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IoError("connection closed mid-body");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  response.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);
  if (inflight_ > 0) --inflight_;
  return response;
}

Result<HttpResponse> HttpClient::Roundtrip(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::map<std::string, std::string>& headers) {
  if (inflight_ != 0) {
    return Status::InvalidArgument(
        "Roundtrip with pipelined responses outstanding");
  }
  PDX_RETURN_IF_ERROR(SendRequest(method, target, body, headers));
  return ReadResponse();
}

}  // namespace pdx
