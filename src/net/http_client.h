#ifndef PDX_NET_HTTP_CLIENT_H_
#define PDX_NET_HTTP_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/http_server.h"

namespace pdx {

/// A small blocking HTTP/1.1 client over one keep-alive connection: the
/// test helper and bench loadgen for the wire front end (it is NOT a
/// general-purpose client — one host, Content-Length framing only, no
/// redirects, no TLS).
///
/// Supports explicit pipelining: SendRequest enqueues without reading,
/// ReadResponse reads the next response in order — the stress tests drive
/// M pipelined requests per connection through exactly this split.
///
/// Thread safety: none; one thread per client (the loadgen spawns one
/// client per thread).
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept
      : fd_(other.fd_),
        inflight_(other.inflight_),
        buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
    other.inflight_ = 0;
  }
  HttpClient& operator=(HttpClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      inflight_ = other.inflight_;
      buffer_ = std::move(other.buffer_);
      other.fd_ = -1;
      other.inflight_ = 0;
    }
    return *this;
  }

  /// Connects to host:port (host is a dotted IPv4 literal, e.g.
  /// "127.0.0.1"). Reconnect after Close() is fine.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One whole round trip: sends and waits for the response. Requires no
  /// pipelined responses outstanding.
  Result<HttpResponse> Roundtrip(const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "",
                                 const std::map<std::string, std::string>&
                                     headers = {});

  /// Pipelining half 1: writes the request and returns without reading.
  Status SendRequest(const std::string& method, const std::string& target,
                     const std::string& body = "",
                     const std::map<std::string, std::string>& headers = {});

  /// Pipelining half 2: blocks for the next in-order response.
  Result<HttpResponse> ReadResponse();

  /// Outstanding pipelined requests (sent, not yet read back).
  size_t inflight() const { return inflight_; }

  /// Writes raw bytes on the connection — malformed-request tests speak
  /// broken HTTP on purpose.
  Status SendRaw(const std::string& bytes);

 private:
  int fd_ = -1;
  size_t inflight_ = 0;
  std::string buffer_;  ///< Bytes read past the previous response.
};

}  // namespace pdx

#endif  // PDX_NET_HTTP_CLIENT_H_
