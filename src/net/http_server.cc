#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/wire_util.h"

namespace pdx {

namespace {

using net_internal::SendAll;
using net_internal::ToLower;
using net_internal::Trim;

std::string SerializeResponse(const HttpResponse& response, bool close) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace

int HttpStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk:
      return 200;
    case Status::Code::kInvalidArgument:
      return 400;
    case Status::Code::kNotFound:
      return 404;
    case Status::Code::kResourceExhausted:
      return 429;
    case Status::Code::kDeadlineExceeded:
      return 504;
    case Status::Code::kCancelled:
      return 503;
    case Status::Code::kUnsupported:
      return 501;
    case Status::Code::kIoError:
    case Status::Code::kCorruption:
    case Status::Code::kInternal:
      return 500;
  }
  return 500;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 100:
      return "Continue";
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Status";
  }
}

/// One live client connection. The reader thread parses requests and
/// allocates response slots in arrival order; responders complete slots
/// from any thread; whoever completes the oldest outstanding slot drains
/// every ready-in-order response to the socket. `front_seq` names the slot
/// at slots.front(), so a responder maps its sequence number to a deque
/// index without searching.
struct HttpServer::Connection {
  explicit Connection(int fd_in, size_t max_pipelined_in)
      : fd(fd_in), max_pipelined(max_pipelined_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  const size_t max_pipelined;
  std::thread thread;
  std::atomic<bool> done{false};

  struct Slot {
    bool ready = false;
    bool close_after = false;
    HttpResponse response;
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Slot> slots;
  uint64_t front_seq = 0;    ///< Sequence number of slots.front().
  uint64_t next_seq = 0;     ///< Assigned to the next parsed request.
  bool writing = false;      ///< One flusher at a time.
  bool closed = false;       ///< Socket shut down; flushes become drops.

  void ShutdownLocked() {
    if (!closed) {
      closed = true;
      ::shutdown(fd, SHUT_RDWR);
    }
  }

  /// Marks slot `seq` complete and drains every leading completed slot to
  /// the socket, in order. Safe from any thread; extra completions of the
  /// same slot are ignored.
  void Complete(uint64_t seq, HttpResponse response) {
    std::unique_lock<std::mutex> lock(mutex);
    if (seq < front_seq) return;  // Already flushed: a double completion.
    const size_t index = static_cast<size_t>(seq - front_seq);
    if (index >= slots.size() || slots[index].ready) return;
    slots[index].ready = true;
    slots[index].response = std::move(response);
    if (writing) return;  // The current flusher will pick this up.
    writing = true;
    while (!slots.empty() && slots.front().ready) {
      Slot slot = std::move(slots.front());
      slots.pop_front();
      ++front_seq;
      const bool drop = closed;
      lock.unlock();
      bool sent = false;
      if (!drop) {
        sent = SendAll(fd, SerializeResponse(slot.response, slot.close_after));
      }
      lock.lock();
      if (drop || !sent || slot.close_after) {
        ShutdownLocked();
        // Keep draining: later slots must still be popped so the reader's
        // final wait (slots.empty()) terminates — they just go nowhere.
      }
    }
    writing = false;
    lock.unlock();
    cv.notify_all();
  }
};

HttpServer::HttpServer(HttpServerConfig config) : config_(std::move(config)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(HttpHandler handler) {
  if (running_.load()) return Status::InvalidArgument("server already running");
  if (!handler) return Status::InvalidArgument("null handler");
  handler_ = std::move(handler);
  stopping_.store(false);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status failed =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    const Status failed =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Shut the listener down first so the accept loop unblocks and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Wake every connection: shutdown unblocks recv; the reader threads then
  // run their drain-and-exit path.
  std::vector<std::shared_ptr<Connection>> doomed;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    doomed = connections_;
  }
  for (const std::shared_ptr<Connection>& conn : doomed) {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->ShutdownLocked();
    conn->cv.notify_all();
  }
  for (const std::shared_ptr<Connection>& conn : doomed) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.clear();
}

size_t HttpServer::connection_count() const {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  size_t live = 0;
  for (const std::shared_ptr<Connection>& conn : connections_) {
    if (!conn->done.load()) ++live;
  }
  return live;
}

void HttpServer::ReapConnectionsLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load()) return;
      if (errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Transient fd/memory pressure (plausible at max_connections plus
        // client churn): pending connections stay in the backlog, so back
        // off briefly and retry instead of silently never accepting again
        // while running() still reports true. Reap first — finished
        // connections keep their fds until reaped, and reaping otherwise
        // only runs after a successful accept, so skipping it here would
        // livelock when the exhausted fds are our own. Stop() unblocks
        // the sleep's follow-up accept by shutting the listener down.
        {
          std::lock_guard<std::mutex> lock(connections_mutex_);
          ReapConnectionsLocked();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      return;  // Listener broken: nothing more to accept.
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    if (config_.send_timeout.count() > 0) {
      // Bounds how long a response flush can block on a client that
      // stopped reading: past the timeout the send fails and the
      // connection is dropped, instead of parking the completing thread
      // (often a service dispatcher) forever.
      timeval timeout{};
      timeout.tv_sec = static_cast<time_t>(config_.send_timeout.count());
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    ReapConnectionsLocked();
    if (connections_.size() >= config_.max_connections) {
      // Over capacity: the wire analog of admission control. Answered
      // directly — there is no connection thread to order against.
      HttpResponse full;
      full.status = 503;
      full.headers.emplace("Retry-After", "1");
      full.body = "{\"error\":\"too many connections\"}";
      SendAll(fd, SerializeResponse(full, /*close=*/true));
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>(fd, config_.max_pipelined);
    connections_.push_back(conn);
    conn->thread = std::thread([this, conn] { ConnectionLoop(conn); });
  }
}

namespace {

/// Parsed request head or the protocol error to answer with.
struct RequestHead {
  HttpRequest request;
  size_t content_length = 0;
  bool keep_alive = true;
  bool expects_continue = false;
  int error_status = 0;  ///< Non-zero: answer this and close.
  std::string error;
};

RequestHead ParseRequestHead(const std::string& head) {
  RequestHead out;
  const size_t line_end = head.find("\r\n");
  const std::string request_line = head.substr(0, line_end);
  const size_t method_end = request_line.find(' ');
  const size_t target_end = request_line.rfind(' ');
  if (method_end == std::string::npos || target_end == method_end) {
    out.error_status = 400;
    out.error = "malformed request line";
    return out;
  }
  out.request.method = request_line.substr(0, method_end);
  std::string target =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  const std::string version = request_line.substr(target_end + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    out.error_status = 400;
    out.error = "unsupported HTTP version";
    return out;
  }
  out.keep_alive = version == "HTTP/1.1";
  const size_t question = target.find('?');
  if (question != std::string::npos) {
    out.request.query = target.substr(question + 1);
    target.resize(question);
  }
  if (target.empty() || target[0] != '/') {
    out.error_status = 400;
    out.error = "request target must be an absolute path";
    return out;
  }
  out.request.path = std::move(target);

  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    const size_t eol = head.find("\r\n", pos);
    const std::string line =
        head.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    pos = eol == std::string::npos ? head.size() : eol + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      out.error_status = 400;
      out.error = "malformed header line";
      return out;
    }
    const std::string name = ToLower(line.substr(0, colon));
    if (name == "content-length" && out.request.headers.count(name) != 0) {
      // Repeated framing headers must be a hard error, not last-one-wins:
      // two conflicting Content-Length values are the classic
      // request-smuggling vector behind an intermediary that picks the
      // other one.
      out.error_status = 400;
      out.error = "duplicate Content-Length header";
      return out;
    }
    out.request.headers[name] = Trim(line.substr(colon + 1));
  }

  const auto& headers = out.request.headers;
  if (headers.count("transfer-encoding") != 0) {
    out.error_status = 501;
    out.error = "Transfer-Encoding is not supported; use Content-Length";
    return out;
  }
  if (auto it = headers.find("content-length"); it != headers.end()) {
    char* end = nullptr;
    const unsigned long long length = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      out.error_status = 400;
      out.error = "malformed Content-Length";
      return out;
    }
    out.content_length = static_cast<size_t>(length);
  }
  if (auto it = headers.find("connection"); it != headers.end()) {
    const std::string value = ToLower(it->second);
    if (value == "close") out.keep_alive = false;
    if (value == "keep-alive") out.keep_alive = true;
  }
  if (auto it = headers.find("expect"); it != headers.end()) {
    out.expects_continue = ToLower(it->second) == "100-continue";
  }
  return out;
}

}  // namespace

void HttpServer::ConnectionLoop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[64 * 1024];
  bool reading = true;

  // Answers a protocol violation through the ordered response path (it
  // must not overtake earlier pipelined responses still in flight) and
  // stops reading — after a framing error the byte stream is garbage.
  const auto answer_violation = [&](int status, const std::string& message) {
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      seq = conn->next_seq++;
      Connection::Slot slot;
      slot.close_after = true;
      conn->slots.push_back(std::move(slot));
    }
    HttpResponse response;
    response.status = status;
    response.body = "{\"error\":\"" + message + "\"}";
    conn->Complete(seq, std::move(response));
    reading = false;
  };

  while (reading) {
    // Frame the next request head.
    size_t head_end;
    while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      if (buffer.size() > config_.max_header_bytes) break;
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;  // Signal, not a hang-up.
      if (n <= 0) {
        reading = false;
        break;
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    if (!reading) {
      if (!buffer.empty() && buffer.find("\r\n\r\n") == std::string::npos &&
          buffer.size() <= config_.max_header_bytes) {
        // Trailing partial request: the client hung up mid-head. Nothing
        // to answer.
      }
      break;
    }
    if (head_end == std::string::npos) {
      answer_violation(431, "request head too large");
      break;
    }

    RequestHead head = ParseRequestHead(buffer.substr(0, head_end));
    buffer.erase(0, head_end + 4);
    if (head.error_status != 0) {
      answer_violation(head.error_status, head.error);
      break;
    }
    if (head.content_length > config_.max_body_bytes) {
      // Refused before buffering: an oversized payload must cost the
      // server a header read, not gigabytes of memory.
      answer_violation(413, "body exceeds " +
                               std::to_string(config_.max_body_bytes) +
                               " bytes");
      break;
    }
    if (head.expects_continue) {
      // The body is acceptable size-wise; tell the client to send it —
      // but ONLY while the connection is quiescent. With responses
      // outstanding, a flusher thread may be mid-send on this fd, and an
      // interim line would interleave into its byte stream (it would also
      // overtake earlier pipelined responses). Holding the mutex while
      // quiescent keeps any new completion parked until the interim line
      // is out. Skipping is legal: clients fall back to sending the body
      // after their continue timeout.
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->slots.empty() && !conn->writing && !conn->closed) {
        if (!SendAll(conn->fd, "HTTP/1.1 100 Continue\r\n\r\n")) break;
      }
    }
    while (buffer.size() < head.content_length) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;  // Signal, not a hang-up.
      if (n <= 0) {
        reading = false;
        break;
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    if (!reading) break;  // Hung up mid-body.
    head.request.body = buffer.substr(0, head.content_length);
    buffer.erase(0, head.content_length);

    // Pipelining backpressure: bound the unanswered requests buffered per
    // connection; resume when responses drain (or give up when closed).
    uint64_t seq;
    {
      std::unique_lock<std::mutex> lock(conn->mutex);
      conn->cv.wait(lock, [&] {
        return conn->slots.size() < conn->max_pipelined || conn->closed;
      });
      if (conn->closed) break;
      seq = conn->next_seq++;
      Connection::Slot slot;
      slot.close_after = !head.keep_alive;
      conn->slots.push_back(std::move(slot));
    }
    if (!head.keep_alive) reading = false;

    HttpResponder responder = [conn, seq](HttpResponse response) {
      conn->Complete(seq, std::move(response));
    };
    try {
      handler_(std::move(head.request), responder);
    } catch (const std::exception& e) {
      HttpResponse failed;
      failed.status = 500;
      failed.body = "{\"error\":\"handler threw\"}";
      responder(std::move(failed));
      (void)e;
    } catch (...) {
      HttpResponse failed;
      failed.status = 500;
      failed.body = "{\"error\":\"handler threw\"}";
      responder(std::move(failed));
    }
  }

  // Reader done (client hung up, Connection: close, or violation). The
  // socket stays open until every outstanding response flushed — the
  // client may have half-closed and still be reading answers.
  {
    std::unique_lock<std::mutex> lock(conn->mutex);
    conn->cv.wait(lock, [&] {
      return (conn->slots.empty() && !conn->writing) || conn->closed;
    });
    conn->ShutdownLocked();
  }
  conn->done.store(true);
}

}  // namespace pdx
