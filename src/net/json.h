#ifndef PDX_NET_JSON_H_
#define PDX_NET_JSON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pdx {

/// A parsed JSON document node: one of null / bool / number / string /
/// array / object. The value type behind the wire front end — requests are
/// parsed into it, responses are built from it — so it stays deliberately
/// small: no allocator tricks, no SAX interface, objects as insertion-
/// ordered key/value vectors (wire objects are tiny; ordered output makes
/// responses and the writer round-trip deterministic).
///
/// Numbers are IEEE doubles, like JavaScript's: integers round-trip
/// exactly up to 2^53, which comfortably covers every count/id the service
/// emits. NaN/Infinity are unrepresentable in JSON; the parser rejects the
/// tokens and the writer maps non-finite values to null rather than
/// emitting something a peer cannot parse back.
class JsonValue {
 public:
  enum class Kind : uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Member = std::pair<std::string, JsonValue>;

  /// Null by default.
  JsonValue() = default;
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  JsonValue(int value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(size_t value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : JsonValue(std::string(value)) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (asserted in debug builds, the zero value in release builds).
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;

  /// Array access.
  const std::vector<JsonValue>& items() const { return items_; }
  size_t size() const;
  JsonValue& Append(JsonValue value);

  /// Object access: insertion-ordered members, linear lookup (wire objects
  /// hold a handful of keys). Find returns null on a missing key.
  const std::vector<Member>& members() const { return members_; }
  const JsonValue* Find(std::string_view key) const;
  /// Sets `key` (replacing an existing member) and returns the stored value.
  JsonValue& Set(std::string key, JsonValue value);

  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Strict-ish RFC 8259 parser over a complete in-memory document:
///   - exactly one top-level value, trailing garbage rejected;
///   - numbers must be finite (NaN/Infinity/overflow rejected — a wire
///     payload must not smuggle non-finite floats into distance kernels);
///   - \uXXXX escapes decoded to UTF-8, surrogate pairs included, lone
///     surrogates rejected;
///   - nesting bounded by `max_depth` so a "[[[[..." body cannot overflow
///     the connection thread's stack;
///   - truncated or malformed input returns InvalidArgument (with the byte
///     offset), never crashes and never reads past `text`.
Result<JsonValue> ParseJson(std::string_view text, size_t max_depth = 64);

/// Serializes `value` compactly (no whitespace). Strings are escaped so
/// the output always round-trips through ParseJson; numbers print the
/// shortest form that parses back to the same double. Non-finite numbers
/// are a programming error: asserted in debug builds, emitted as null in
/// release builds (the one JSON value that cannot be mistaken for a
/// measurement).
std::string WriteJson(const JsonValue& value);

}  // namespace pdx

#endif  // PDX_NET_JSON_H_
