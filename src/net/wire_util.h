#ifndef PDX_NET_WIRE_UTIL_H_
#define PDX_NET_WIRE_UTIL_H_

// Internal helpers shared by the net/ transport files (server and client
// speak the same byte-level dialect; one copy keeps EINTR/SIGPIPE
// semantics from diverging). Not part of the public wire API.

#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstddef>
#include <string>

namespace pdx {
namespace net_internal {

inline std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

inline std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

/// Writes the whole buffer, riding out EINTR and partial sends.
/// MSG_NOSIGNAL: a peer that hung up must surface as an error return, not
/// a process-killing SIGPIPE on the caller's thread. Any other errno —
/// including EAGAIN from an SO_SNDTIMEO-bounded socket whose peer stopped
/// reading — fails the send (the caller closes the connection).
inline bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

inline bool SendAll(int fd, const std::string& data) {
  return SendAll(fd, data.data(), data.size());
}

}  // namespace net_internal
}  // namespace pdx

#endif  // PDX_NET_WIRE_UTIL_H_
