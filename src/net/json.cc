#include "net/json.h"

#include <cassert>
#include <charconv>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pdx {

bool JsonValue::AsBool() const {
  assert(is_bool());
  return is_bool() ? bool_ : false;
}

double JsonValue::AsNumber() const {
  assert(is_number());
  return is_number() ? number_ : 0.0;
}

const std::string& JsonValue::AsString() const {
  assert(is_string());
  static const std::string empty;
  return is_string() ? string_ : empty;
}

size_t JsonValue::size() const {
  if (is_array()) return items_.size();
  if (is_object()) return members_.size();
  return 0;
}

JsonValue& JsonValue::Append(JsonValue value) {
  assert(is_array());
  items_.push_back(std::move(value));
  return items_.back();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  assert(is_object());
  for (Member& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return member.second;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return members_.back().second;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      return number_ == other.number_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray:
      return items_ == other.items_;
    case Kind::kObject:
      return members_ == other.members_;
  }
  return false;
}

namespace {

/// Recursive-descent parser over the whole document. Depth is tracked
/// explicitly: the recursion mirrors the input's nesting, so the bound is
/// what keeps "[[[[..." from becoming a stack overflow on the connection
/// thread.
class JsonParser {
 public:
  JsonParser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    PDX_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        PDX_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        *out = JsonValue(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        *out = JsonValue(false);
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        *out = JsonValue::Null();
        return Status::OK();
      default:
        // Also the NaN/Infinity rejection path: neither is a JSON literal,
        // so "NaN", "Infinity", and "-Infinity" all fail here or in the
        // number grammar below.
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    if (++depth_ > max_depth_) return Error("nesting too deep");
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      PDX_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      PDX_RETURN_IF_ERROR(ParseValue(&value));
      // Duplicate keys: last one wins (the common lenient choice; Set
      // replaces in place so member order stays first-occurrence).
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    --depth_;
    return Status::OK();
  }

  Status ParseArray(JsonValue* out) {
    if (++depth_ > max_depth_) return Error("nesting too deep");
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return Status::OK();
    }
    for (;;) {
      JsonValue value;
      PDX_RETURN_IF_ERROR(ParseValue(&value));
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    --depth_;
    return Status::OK();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (size_t i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        // Bytes >= 0x80 pass through untouched: the document is treated as
        // UTF-8 and re-emitted byte-identically by the writer.
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          PDX_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!ConsumeLiteral("\\u")) return Error("lone high surrogate");
            uint32_t low = 0;
            PDX_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // fallthrough: digits must follow.
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // Leading zero takes no more integer digits.
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // strtod_l over a bounded copy of the token: unlike from_chars it
    // distinguishes overflow (+-HUGE_VAL — reject: the wire must not
    // smuggle infinities into distance kernels) from underflow (rounds to
    // zero/denormal — harmless), and the pinned "C" locale keeps '.' the
    // radix even when the embedding process sets a comma-decimal
    // LC_NUMERIC (plain strtod would then stop at the '.' and reject
    // valid JSON like 1.5).
    static const locale_t c_locale = ::newlocale(LC_ALL_MASK, "C", nullptr);
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = c_locale != static_cast<locale_t>(nullptr)
                             ? ::strtod_l(token.c_str(), &end, c_locale)
                             : std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("number out of double range");
    }
    *out = JsonValue(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t depth_ = 0;
  const size_t max_depth_;
};

void WriteString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

void WriteNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    // JSON has no NaN/Infinity. null is the only honest stand-in: a peer
    // parsing the document back sees "no value" instead of a garbage 0.
    assert(false && "WriteJson: non-finite number");
    out->append("null");
    return;
  }
  // Shortest representation that round-trips to the same double.
  char buf[32];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, r.ptr);
}

void WriteValue(const JsonValue& value, std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out->append("null");
      break;
    case JsonValue::Kind::kBool:
      out->append(value.AsBool() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber:
      WriteNumber(value.AsNumber(), out);
      break;
    case JsonValue::Kind::kString:
      WriteString(value.AsString(), out);
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out->push_back(',');
        first = false;
        WriteValue(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const JsonValue::Member& member : value.members()) {
        if (!first) out->push_back(',');
        first = false;
        WriteString(member.first, out);
        out->push_back(':');
        WriteValue(member.second, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(std::string_view text, size_t max_depth) {
  return JsonParser(text, max_depth).Parse();
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteValue(value, &out);
  return out;
}

}  // namespace pdx
