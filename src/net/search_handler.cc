#include "net/search_handler.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/sharded_searcher.h"
#include "kernels/kernel_dispatch.h"
#include "storage/vector_set.h"

namespace pdx {

namespace {

JsonValue LatencyJson(const LatencySummary& summary) {
  JsonValue out = JsonValue::Object();
  out.Set("count", summary.count);
  out.Set("p50_ms", summary.p50_ms);
  out.Set("p95_ms", summary.p95_ms);
  out.Set("p99_ms", summary.p99_ms);
  return out;
}

JsonValue NeighborsJson(const std::vector<Neighbor>& neighbors) {
  JsonValue out = JsonValue::Array();
  for (const Neighbor& neighbor : neighbors) {
    JsonValue hit = JsonValue::Object();
    hit.Set("id", static_cast<size_t>(neighbor.id));
    // A non-finite distance cannot ride JSON; null is the honest stand-in
    // (it only arises from degenerate payloads an exact parser rejects).
    if (std::isfinite(neighbor.distance)) {
      hit.Set("distance", static_cast<double>(neighbor.distance));
    } else {
      hit.Set("distance", JsonValue::Null());
    }
    out.Append(std::move(hit));
  }
  return out;
}

JsonValue CountersJson(const SearchCounters& counters) {
  JsonValue out = JsonValue::Object();
  out.Set("blocks_visited", static_cast<size_t>(counters.blocks_visited));
  out.Set("vectors_pruned", static_cast<size_t>(counters.vectors_pruned));
  out.Set("values_scanned", static_cast<size_t>(counters.values_scanned));
  out.Set("values_avoided", static_cast<size_t>(counters.values_avoided));
  out.Set("dims_scanned", static_cast<size_t>(counters.dims_scanned));
  out.Set("predicate_evaluations",
          static_cast<size_t>(counters.predicate_evaluations));
  out.Set("rerank_candidates",
          static_cast<size_t>(counters.rerank_candidates));
  out.Set("pruning_power", counters.pruning_power());
  return out;
}

JsonValue TraceJson(const QueryTrace& trace) {
  JsonValue out = JsonValue::Object();
  out.Set("request_id", trace.request_id);
  JsonValue stages = JsonValue::Object();
  stages.Set("queue_ms", trace.queue_ms);
  stages.Set("dispatch_ms", trace.stage_ms);
  stages.Set("search_ms", trace.search_ms);
  stages.Set("deliver_ms", trace.deliver_ms);
  stages.Set("total_ms", trace.total_ms);
  out.Set("stages", std::move(stages));
  out.Set("counters", CountersJson(trace.counters));
  return out;
}

/// One query's result as a wire object — the per-item shape of both the
/// single and the batched response.
JsonValue QueryResultJson(const QueryResult& result) {
  JsonValue out = JsonValue::Object();
  out.Set("status", StatusCodeName(result.status.code()));
  if (result.status.ok()) {
    out.Set("neighbors", NeighborsJson(result.neighbors));
  } else {
    out.Set("error", result.status.ToString());
  }
  out.Set("queue_ms", result.queue_ms);
  out.Set("total_ms", result.total_ms);
  if (result.trace != nullptr) out.Set("trace", TraceJson(*result.trace));
  return out;
}

JsonValue InfoJson(const CollectionInfo& info) {
  JsonValue out = JsonValue::Object();
  out.Set("name", info.name);
  out.Set("dim", info.dim);
  out.Set("count", info.count);
  out.Set("k", info.default_k);
  out.Set("nprobe", info.default_nprobe);
  out.Set("max_nprobe", info.max_nprobe);
  out.Set("shards", info.shards);
  out.Set("layout", SearcherLayoutName(info.layout));
  out.Set("pruner", PrunerKindName(info.pruner));
  out.Set("quantization", QuantizationKindName(info.quantization));
  if (info.quantization != QuantizationKind::kNone) {
    out.Set("rerank_factor", info.rerank_factor);
    out.Set("quantized_bytes", static_cast<size_t>(info.quantized_bytes));
  }
  out.Set("source", info.source);
  return out;
}

HttpResponse JsonResponse(int status, const JsonValue& body) {
  HttpResponse response;
  response.status = status;
  response.body = WriteJson(body);
  return response;
}

/// Reads an optional non-negative integer field; 0 when absent or null.
Status ReadSizeField(const JsonValue& object, const char* key, size_t* out) {
  *out = 0;
  const JsonValue* field = object.Find(key);
  if (field == nullptr || field->is_null()) return Status::OK();
  if (!field->is_number()) {
    return Status::InvalidArgument(std::string(key) + " must be a number");
  }
  const double value = field->AsNumber();
  if (value < 0 || value != std::floor(value) || value > 9e15) {
    return Status::InvalidArgument(std::string(key) +
                                   " must be a non-negative integer");
  }
  *out = static_cast<size_t>(value);
  return Status::OK();
}

/// Converts one JSON array of numbers into `dim` floats appended to `out`.
Status AppendQueryVector(const JsonValue& array, size_t dim,
                         std::vector<float>* out) {
  if (!array.is_array()) {
    return Status::InvalidArgument("query must be an array of numbers");
  }
  if (array.size() != dim) {
    return Status::InvalidArgument(
        "query has " + std::to_string(array.size()) + " dimensions, expected " +
        std::to_string(dim));
  }
  for (const JsonValue& item : array.items()) {
    if (!item.is_number()) {
      return Status::InvalidArgument("query dimensions must be numbers");
    }
    const double value = item.AsNumber();
    // The parser guarantees finite doubles, but the kernels run on floats:
    // a finite 1e300 would still turn into +inf at the cast below. Clamp
    // nothing — reject, so no non-finite value ever reaches a distance
    // kernel through the wire.
    if (value > std::numeric_limits<float>::max() ||
        value < std::numeric_limits<float>::lowest()) {
      return Status::InvalidArgument("vector value out of float range");
    }
    out->push_back(static_cast<float>(value));
  }
  return Status::OK();
}

/// A decoded ingest payload: `count` row-major `dim`-float rows, plus the
/// per-row ids when (and only when) the payload carried them.
struct IngestRows {
  std::vector<float> values;
  std::vector<uint64_t> ids;
  bool with_ids = false;
  size_t count = 0;
  size_t dim = 0;
};

/// Reads one external id: a non-negative integer that fits VectorId (merged
/// results carry external ids in Neighbor::id, so the ceiling is the
/// sentinel, not 2^53).
Status ReadIdValue(const JsonValue& value, uint64_t* out) {
  if (!value.is_number()) {
    return Status::InvalidArgument("ids must be numbers");
  }
  const double number = value.AsNumber();
  if (number < 0 || number != std::floor(number) ||
      number >= static_cast<double>(kInvalidVectorId)) {
    return Status::InvalidArgument("ids must be integers in [0, 4294967295)");
  }
  *out = static_cast<uint64_t>(number);
  return Status::OK();
}

/// Appends one parsed NDJSON row — a plain float array or
/// {"id": n, "vector": [...]} — enforcing the all-or-none id rule and a
/// uniform dimension (both anchored by the first row).
Status AppendIngestRow(const JsonValue& row, IngestRows* out) {
  const JsonValue* vector = nullptr;
  bool has_id = false;
  uint64_t id = 0;
  if (row.is_array()) {
    vector = &row;
  } else if (row.is_object()) {
    vector = row.Find("vector");
    if (vector == nullptr) {
      return Status::InvalidArgument(
          "row objects must carry a \"vector\" array");
    }
    if (const JsonValue* id_field = row.Find("id");
        id_field != nullptr && !id_field->is_null()) {
      PDX_RETURN_IF_ERROR(ReadIdValue(*id_field, &id));
      has_id = true;
    }
  } else {
    return Status::InvalidArgument(
        "each row must be a float array or {\"id\": n, \"vector\": [...]}");
  }
  if (out->count == 0) {
    out->dim = vector->size();
    if (out->dim == 0) {
      return Status::InvalidArgument(
          "rows must have at least one dimension");
    }
    out->with_ids = has_id;
  } else if (has_id != out->with_ids) {
    return Status::InvalidArgument(
        "either every row or no row carries an id");
  }
  PDX_RETURN_IF_ERROR(AppendQueryVector(*vector, out->dim, &out->values));
  if (has_id) out->ids.push_back(id);
  ++out->count;
  return Status::OK();
}

/// Decodes an ingest body. A body opening with '{' is one JSON object
/// {"vectors": [[...], ...], "ids": [...]} (ids optional); anything else is
/// NDJSON — one row per line, blank lines skipped — which is how large
/// ingests stream past the whole-body JSON size cap without ever holding
/// one giant document.
Result<IngestRows> ParseIngestBody(const std::string& body) {
  IngestRows rows;
  const size_t first = body.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    return Status::InvalidArgument("ingest body is empty");
  }
  // A '{' opener is ambiguous: both the whole-body object format and an
  // NDJSON object row start with it. It is the whole-body format exactly
  // when the body parses as ONE document carrying "vectors" — an NDJSON
  // stream of object rows either fails the single-document parse (several
  // values) or lacks the key.
  Result<JsonValue> whole =
      body[first] == '{' ? ParseJson(body) : Result<JsonValue>(Status::InvalidArgument(""));
  if (whole.ok() && whole.value().Find("vectors") != nullptr) {
    const JsonValue& doc = whole.value();
    const JsonValue* vectors = doc.Find("vectors");
    if (!vectors->is_array() || vectors->size() == 0) {
      return Status::InvalidArgument(
          "\"vectors\" must be a non-empty array of float arrays");
    }
    const JsonValue* ids = doc.Find("ids");
    if (ids != nullptr && ids->is_null()) ids = nullptr;
    if (ids != nullptr &&
        (!ids->is_array() || ids->size() != vectors->size())) {
      return Status::InvalidArgument(
          "\"ids\" must be an array matching \"vectors\" in length");
    }
    rows.dim = vectors->items().front().size();
    if (rows.dim == 0) {
      return Status::InvalidArgument("rows must have at least one dimension");
    }
    rows.values.reserve(vectors->size() * rows.dim);
    for (const JsonValue& row : vectors->items()) {
      PDX_RETURN_IF_ERROR(AppendQueryVector(row, rows.dim, &rows.values));
    }
    rows.count = vectors->size();
    if (ids != nullptr) {
      rows.with_ids = true;
      rows.ids.reserve(ids->size());
      for (const JsonValue& id : ids->items()) {
        uint64_t value = 0;
        PDX_RETURN_IF_ERROR(ReadIdValue(id, &value));
        rows.ids.push_back(value);
      }
    }
    return rows;
  }
  // NDJSON: parse line by line so memory tracks one row, not the body.
  size_t start = 0;
  size_t line_number = 0;
  while (start <= body.size()) {
    size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    std::string_view line(body.data() + start, end - start);
    start = end + 1;
    ++line_number;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                             line.back() == '\t')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (line.empty()) continue;
    Result<JsonValue> parsed = ParseJson(line);
    Status row_status =
        parsed.ok() ? AppendIngestRow(parsed.value(), &rows) : parsed.status();
    if (!row_status.ok()) {
      return Status::InvalidArgument("ingest line " +
                                     std::to_string(line_number) + ": " +
                                     row_status.message());
    }
  }
  if (rows.count == 0) {
    return Status::InvalidArgument("ingest body carries no rows");
  }
  return rows;
}

/// Completion state shared by the N callbacks of one batched search:
/// results land by index, the last arrival builds and sends the response.
struct BatchState {
  std::mutex mutex;
  std::vector<QueryResult> results;
  size_t remaining = 0;
  HttpResponder respond;
};

}  // namespace

HttpResponse MakeErrorResponse(const Status& status) {
  JsonValue body = JsonValue::Object();
  body.Set("error", status.message());
  body.Set("status", StatusCodeName(status.code()));
  HttpResponse response = JsonResponse(HttpStatusFromStatus(status), body);
  if (status.IsResourceExhausted()) {
    // Backpressure is explicitly retryable; tell the client when.
    response.headers["Retry-After"] = "1";
  }
  return response;
}

std::string SearchHandler::ResolveRequestId(const HttpRequest& request) {
  const auto it = request.headers.find("x-request-id");
  if (it != request.headers.end() && !it->second.empty()) {
    // Echoing a client string back into a response header: clamp the
    // length and keep only header-safe printable characters, so a hostile
    // id can neither bloat responses nor smuggle header syntax.
    std::string id = it->second.substr(0, 128);
    for (char& c : id) {
      if (c < 0x21 || c > 0x7e) c = '_';
    }
    return id;
  }
  return "pdx-" + std::to_string(request_seq_.fetch_add(1) + 1);
}

void SearchHandler::Handle(HttpRequest request, HttpResponder respond) {
  // Resolve the request id up front and wrap the responder so EVERY
  // response — error paths, async search completions, the lot — carries
  // the X-Request-Id header exactly once.
  const std::string request_id = ResolveRequestId(request);
  respond = [inner = std::move(respond), request_id](HttpResponse response) {
    response.headers["X-Request-Id"] = request_id;
    inner(std::move(response));
  };
  const std::string& path = request.path;
  if (path == "/healthz") {
    if (request.method != "GET") {
      respond(MakeErrorResponse(Status::InvalidArgument("use GET /healthz")));
      return;
    }
    HandleHealthz(std::move(respond));
    return;
  }
  if (path == "/stats") {
    if (request.method != "GET") {
      respond(MakeErrorResponse(Status::InvalidArgument("use GET /stats")));
      return;
    }
    HandleStats(std::move(respond));
    return;
  }
  if (path == "/metrics") {
    if (request.method != "GET") {
      respond(MakeErrorResponse(Status::InvalidArgument("use GET /metrics")));
      return;
    }
    HandleMetrics(std::move(respond));
    return;
  }
  if (path == "/collections") {
    if (request.method != "GET") {
      respond(MakeErrorResponse(
          Status::InvalidArgument("use GET /collections")));
      return;
    }
    HandleListCollections(std::move(respond));
    return;
  }
  const std::string prefix = "/collections/";
  if (path.rfind(prefix, 0) == 0) {
    std::string rest = path.substr(prefix.size());
    const size_t slash = rest.find('/');
    if (slash == std::string::npos) {
      const std::string name = std::move(rest);
      if (name.empty()) {
        respond(MakeErrorResponse(
            Status::InvalidArgument("collection name must be non-empty")));
        return;
      }
      if (request.method == "PUT") {
        HandlePut(name, request, std::move(respond));
      } else if (request.method == "DELETE") {
        HandleDelete(name, std::move(respond));
      } else if (request.method == "GET") {
        HandleGetCollection(name, std::move(respond));
      } else {
        respond(MakeErrorResponse(Status::InvalidArgument(
            "use PUT/DELETE/GET on /collections/<name>")));
      }
      return;
    }
    const std::string name = rest.substr(0, slash);
    const std::string action = rest.substr(slash + 1);
    if (action == "search" && !name.empty()) {
      if (request.method != "POST") {
        respond(MakeErrorResponse(Status::InvalidArgument(
            "use POST /collections/<name>/search")));
        return;
      }
      HandleSearch(name, request, request_id, std::move(respond));
      return;
    }
    if (action == "vectors" && !name.empty()) {
      if (request.method != "POST") {
        respond(MakeErrorResponse(Status::InvalidArgument(
            "use POST /collections/<name>/vectors")));
        return;
      }
      HandleAddVectors(name, request, std::move(respond));
      return;
    }
    if (action.rfind("vectors/", 0) == 0 && !name.empty()) {
      if (request.method != "DELETE") {
        respond(MakeErrorResponse(Status::InvalidArgument(
            "use DELETE /collections/<name>/vectors/<id>")));
        return;
      }
      HandleDeleteVector(name, action.substr(8), std::move(respond));
      return;
    }
    if (action == "save" && !name.empty()) {
      if (request.method != "POST") {
        respond(MakeErrorResponse(Status::InvalidArgument(
            "use POST /collections/<name>/save")));
        return;
      }
      HandleSave(name, request, std::move(respond));
      return;
    }
    if (action == "load" && !name.empty()) {
      if (request.method != "PUT") {
        respond(MakeErrorResponse(Status::InvalidArgument(
            "use PUT /collections/<name>/load")));
        return;
      }
      HandleLoad(name, request, std::move(respond));
      return;
    }
    if (action == "slowlog" && !name.empty()) {
      if (request.method != "GET") {
        respond(MakeErrorResponse(Status::InvalidArgument(
            "use GET /collections/<name>/slowlog")));
        return;
      }
      HandleSlowlog(name, std::move(respond));
      return;
    }
  }
  respond(MakeErrorResponse(Status::NotFound("no route for " + path)));
}

void SearchHandler::HandleSearch(const std::string& collection,
                                 const HttpRequest& request,
                                 const std::string& request_id,
                                 HttpResponder respond) {
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) {
    respond(MakeErrorResponse(parsed.status()));
    return;
  }
  const JsonValue& body = parsed.value();
  if (!body.is_object()) {
    respond(MakeErrorResponse(
        Status::InvalidArgument("search body must be a JSON object")));
    return;
  }

  // Collection shape first: the query payload is validated against the
  // hosted dimension BEFORE Submit copies dim floats from it (a short
  // payload must be a 400, not an out-of-bounds read). The dim here is a
  // snapshot, so query_len below makes Submit re-check it atomically with
  // admission — a concurrent PUT swapping the name to a different-dim
  // collection turns into a per-query 400, not a stale-offset read.
  Result<CollectionInfo> info = service_.GetCollectionInfo(collection);
  if (!info.ok()) {
    respond(MakeErrorResponse(info.status()));
    return;
  }
  const size_t dim = info.value().dim;

  QueryOptions options;
  options.query_len = dim;
  size_t deadline_ms = 0;
  Status knob = ReadSizeField(body, "k", &options.k);
  if (knob.ok()) knob = ReadSizeField(body, "nprobe", &options.nprobe);
  if (knob.ok()) knob = ReadSizeField(body, "deadline_ms", &deadline_ms);
  if (!knob.ok()) {
    respond(MakeErrorResponse(knob));
    return;
  }
  options.timeout = std::chrono::milliseconds(deadline_ms);
  if (const JsonValue* trace = body.Find("trace"); trace != nullptr) {
    if (!trace->is_bool()) {
      respond(MakeErrorResponse(
          Status::InvalidArgument("trace must be a boolean")));
      return;
    }
    options.trace = trace->AsBool();
  }
  // The trace carries the response's X-Request-Id, so the wire trace, the
  // slowlog entry, and the client's own logs correlate on one id. Set even
  // without "trace": true, so a query promoted by the service's
  // trace_sample_rate correlates too (the service only copies the string
  // for queries actually selected).
  options.request_id = request_id;

  const JsonValue* single = body.Find("query");
  const JsonValue* batch = body.Find("queries");
  if ((single == nullptr) == (batch == nullptr)) {
    respond(MakeErrorResponse(Status::InvalidArgument(
        "provide exactly one of \"query\" or \"queries\"")));
    return;
  }

  if (single != nullptr) {
    std::vector<float> query;
    query.reserve(dim);
    const Status converted = AppendQueryVector(*single, dim, &query);
    if (!converted.ok()) {
      respond(MakeErrorResponse(converted));
      return;
    }
    const std::string name = collection;
    // The service copies the query synchronously inside Submit, so the
    // local buffer may die when this scope exits; the callback owns the
    // responder and fires exactly once (SearchService's contract), from
    // the dispatcher thread or inline on rejection.
    service_.Submit(collection, query.data(), options,
                    [respond, name](QueryResult result) {
                      if (!result.status.ok()) {
                        respond(MakeErrorResponse(result.status));
                        return;
                      }
                      JsonValue out = QueryResultJson(result);
                      out.Set("collection", name);
                      respond(JsonResponse(200, out));
                    });
    return;
  }

  if (!batch->is_array() || batch->size() == 0) {
    respond(MakeErrorResponse(Status::InvalidArgument(
        "\"queries\" must be a non-empty array of query arrays")));
    return;
  }
  const size_t num_queries = batch->size();
  std::vector<float> queries;
  queries.reserve(num_queries * dim);
  for (const JsonValue& item : batch->items()) {
    const Status converted = AppendQueryVector(item, dim, &queries);
    if (!converted.ok()) {
      respond(MakeErrorResponse(converted));
      return;
    }
  }

  auto state = std::make_shared<BatchState>();
  state->results.resize(num_queries);
  state->remaining = num_queries;
  state->respond = std::move(respond);
  const std::string name = collection;
  for (size_t q = 0; q < num_queries; ++q) {
    service_.Submit(
        collection, queries.data() + q * dim, options,
        [state, name, q](QueryResult result) {
          JsonValue response_body;
          {
            std::lock_guard<std::mutex> lock(state->mutex);
            state->results[q] = std::move(result);
            if (--state->remaining != 0) return;
            // Last arrival: assemble in submission order. HTTP status is
            // 200 only when every query succeeded; a partial failure
            // answers with the first failing query's mapping, body still
            // carrying every per-query outcome.
            response_body = JsonValue::Object();
            response_body.Set("collection", name);
            JsonValue results = JsonValue::Array();
            for (const QueryResult& item : state->results) {
              results.Append(QueryResultJson(item));
            }
            response_body.Set("results", std::move(results));
          }
          int http_status = 200;
          for (const QueryResult& item : state->results) {
            if (!item.status.ok()) {
              http_status = HttpStatusFromStatus(item.status);
              break;
            }
          }
          HttpResponse response = JsonResponse(http_status, response_body);
          if (http_status == 429) response.headers["Retry-After"] = "1";
          state->respond(std::move(response));
        });
  }
}

void SearchHandler::HandlePut(const std::string& collection,
                              const HttpRequest& request,
                              HttpResponder respond) {
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) {
    respond(MakeErrorResponse(parsed.status()));
    return;
  }
  const JsonValue& body = parsed.value();
  if (!body.is_object()) {
    respond(MakeErrorResponse(
        Status::InvalidArgument("collection body must be a JSON object")));
    return;
  }
  const JsonValue* vectors = body.Find("vectors");
  if (vectors == nullptr || !vectors->is_array() || vectors->size() == 0) {
    respond(MakeErrorResponse(Status::InvalidArgument(
        "\"vectors\" must be a non-empty array of float arrays")));
    return;
  }
  const size_t count = vectors->size();
  const size_t dim = vectors->items().front().size();
  if (dim == 0) {
    respond(MakeErrorResponse(
        Status::InvalidArgument("vectors must have at least one dimension")));
    return;
  }
  std::vector<float> flat;
  flat.reserve(count * dim);
  for (const JsonValue& row : vectors->items()) {
    const Status converted = AppendQueryVector(row, dim, &flat);
    if (!converted.ok()) {
      respond(MakeErrorResponse(converted));
      return;
    }
  }

  SearcherConfig config;
  if (const JsonValue* layout = body.Find("layout"); layout != nullptr) {
    if (!layout->is_string()) {
      respond(MakeErrorResponse(
          Status::InvalidArgument("layout must be \"flat\" or \"ivf\"")));
      return;
    }
    const std::string& value = layout->AsString();
    if (value == "flat") {
      config.layout = SearcherLayout::kFlat;
    } else if (value == "ivf") {
      config.layout = SearcherLayout::kIvf;
    } else {
      respond(MakeErrorResponse(
          Status::InvalidArgument("unknown layout: " + value)));
      return;
    }
  }
  if (const JsonValue* pruner = body.Find("pruner"); pruner != nullptr) {
    if (!pruner->is_string()) {
      respond(MakeErrorResponse(
          Status::InvalidArgument("pruner must be a string")));
      return;
    }
    const std::string& value = pruner->AsString();
    if (value == "linear") {
      config.pruner = PrunerKind::kLinear;
    } else if (value == "adsampling") {
      config.pruner = PrunerKind::kAdsampling;
    } else if (value == "bsa") {
      config.pruner = PrunerKind::kBsa;
    } else if (value == "bond") {
      config.pruner = PrunerKind::kBond;
    } else {
      respond(MakeErrorResponse(
          Status::InvalidArgument("unknown pruner: " + value)));
      return;
    }
  }
  if (const JsonValue* metric = body.Find("metric"); metric != nullptr) {
    if (!metric->is_string()) {
      respond(MakeErrorResponse(
          Status::InvalidArgument("metric must be a string")));
      return;
    }
    const std::string& value = metric->AsString();
    if (value == "l2") {
      config.metric = Metric::kL2;
    } else if (value == "ip") {
      config.metric = Metric::kIp;
    } else if (value == "l1") {
      config.metric = Metric::kL1;
    } else {
      respond(MakeErrorResponse(
          Status::InvalidArgument("unknown metric: " + value)));
      return;
    }
  }
  if (const JsonValue* quant = body.Find("quantization"); quant != nullptr) {
    if (!quant->is_string()) {
      respond(MakeErrorResponse(Status::InvalidArgument(
          "quantization must be \"none\" or \"u8\"")));
      return;
    }
    const std::string& value = quant->AsString();
    if (value == "none") {
      config.quantization = QuantizationKind::kNone;
    } else if (value == "u8") {
      config.quantization = QuantizationKind::kU8;
    } else {
      respond(MakeErrorResponse(
          Status::InvalidArgument("unknown quantization: " + value)));
      return;
    }
  }
  size_t value = 0;
  Status knob = ReadSizeField(body, "k", &value);
  if (knob.ok() && value > 0) config.k = value;
  if (knob.ok()) knob = ReadSizeField(body, "rerank_factor", &value);
  if (knob.ok() && value > 0) config.rerank_factor = value;
  if (knob.ok()) knob = ReadSizeField(body, "nprobe", &value);
  if (knob.ok() && value > 0) config.nprobe = value;
  if (knob.ok()) knob = ReadSizeField(body, "block_capacity", &value);
  if (knob.ok() && value > 0) config.block_capacity = value;
  ShardingOptions sharding;
  if (knob.ok()) knob = ReadSizeField(body, "shards", &value);
  if (knob.ok() && value > 0) sharding.num_shards = value;
  if (!knob.ok()) {
    respond(MakeErrorResponse(knob));
    return;
  }
  if (const JsonValue* assignment = body.Find("assignment");
      assignment != nullptr) {
    if (!assignment->is_string()) {
      respond(MakeErrorResponse(
          Status::InvalidArgument("assignment must be a string")));
      return;
    }
    const std::string& mode = assignment->AsString();
    if (mode == "contiguous") {
      sharding.assignment = ShardAssignment::kContiguous;
    } else if (mode == "round-robin" || mode == "round_robin") {
      sharding.assignment = ShardAssignment::kRoundRobin;
    } else {
      respond(MakeErrorResponse(
          Status::InvalidArgument("unknown assignment: " + mode)));
      return;
    }
  }

  // PUT replaces: an existing collection under the name is unhosted first
  // (its queued queries complete with kCancelled -> the client sees 503).
  // Safe to run on the connection thread — searchers copy the payload into
  // their own PDX stores, so the VectorSet below can die at scope exit.
  (void)service_.RemoveCollection(collection);
  const VectorSet payload = VectorSet::FromRowMajor(flat.data(), count, dim);
  const Status added =
      sharding.num_shards > 1
          ? service_.AddCollection(collection, payload, config, sharding)
          : service_.AddCollection(collection, payload, config);
  if (!added.ok()) {
    respond(MakeErrorResponse(added));
    return;
  }
  Result<CollectionInfo> info = service_.GetCollectionInfo(collection);
  if (!info.ok()) {
    // Raced with a concurrent DELETE — report what the service says now.
    respond(MakeErrorResponse(info.status()));
    return;
  }
  respond(JsonResponse(201, InfoJson(info.value())));
}

void SearchHandler::HandleAddVectors(const std::string& collection,
                                     const HttpRequest& request,
                                     HttpResponder respond) {
  Result<IngestRows> parsed = ParseIngestBody(request.body);
  if (!parsed.ok()) {
    respond(MakeErrorResponse(parsed.status()));
    return;
  }
  const IngestRows& rows = parsed.value();
  // With ids this is the wire's upsert: AddVectors tombstones an existing
  // id and appends the replacement under it, atomically per row.
  Result<std::vector<uint64_t>> added = service_.AddVectors(
      collection, rows.values.data(), rows.count, rows.dim,
      rows.with_ids ? rows.ids.data() : nullptr);
  if (!added.ok()) {
    respond(MakeErrorResponse(added.status()));
    return;
  }
  JsonValue body = JsonValue::Object();
  body.Set("collection", collection);
  body.Set("added", rows.count);
  JsonValue ids = JsonValue::Array();
  for (const uint64_t id : added.value()) {
    ids.Append(static_cast<size_t>(id));
  }
  body.Set("ids", std::move(ids));
  respond(JsonResponse(200, body));
}

void SearchHandler::HandleDeleteVector(const std::string& collection,
                                       const std::string& id_text,
                                       HttpResponder respond) {
  // kInvalidVectorId is 10 decimal digits; anything longer cannot be a
  // valid id, so the bound doubles as the overflow guard for stoull.
  if (id_text.empty() || id_text.size() > 10 ||
      id_text.find_first_not_of("0123456789") != std::string::npos) {
    respond(MakeErrorResponse(Status::InvalidArgument(
        "vector id must be a decimal integer in [0, 4294967295)")));
    return;
  }
  const uint64_t id = std::stoull(id_text);
  if (id >= kInvalidVectorId) {
    respond(MakeErrorResponse(Status::InvalidArgument(
        "vector id must be a decimal integer in [0, 4294967295)")));
    return;
  }
  std::vector<uint64_t> missing;
  Result<size_t> deleted = service_.DeleteVectors(collection, &id, 1, &missing);
  if (!deleted.ok()) {
    respond(MakeErrorResponse(deleted.status()));
    return;
  }
  if (!missing.empty()) {
    respond(MakeErrorResponse(Status::NotFound(
        "no vector with id " + id_text + " in " + collection)));
    return;
  }
  JsonValue body = JsonValue::Object();
  body.Set("collection", collection);
  body.Set("deleted", static_cast<size_t>(1));
  respond(JsonResponse(200, body));
}

namespace {

/// Reads the required {"path": "..."} field both persistence routes share.
Result<std::string> ReadPathField(const std::string& body_text) {
  Result<JsonValue> parsed = ParseJson(body_text);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& body = parsed.value();
  if (!body.is_object()) {
    return Status::InvalidArgument("body must be a JSON object");
  }
  const JsonValue* path = body.Find("path");
  if (path == nullptr || !path->is_string() || path->AsString().empty()) {
    return Status::InvalidArgument(
        "\"path\" must be a non-empty file path string");
  }
  return path->AsString();
}

}  // namespace

void SearchHandler::HandleSave(const std::string& collection,
                               const HttpRequest& request,
                               HttpResponder respond) {
  Result<std::string> path = ReadPathField(request.body);
  if (!path.ok()) {
    respond(MakeErrorResponse(path.status()));
    return;
  }
  // Synchronous on the connection thread, like PUT: the write holds no
  // service lock, so concurrent searches keep flowing while it runs.
  const Status saved = service_.SaveCollection(collection, path.value());
  if (!saved.ok()) {
    respond(MakeErrorResponse(saved));
    return;
  }
  JsonValue body = JsonValue::Object();
  body.Set("collection", collection);
  body.Set("path", path.value());
  body.Set("saved", true);
  respond(JsonResponse(200, body));
}

void SearchHandler::HandleLoad(const std::string& collection,
                               const HttpRequest& request,
                               HttpResponder respond) {
  Result<std::string> path = ReadPathField(request.body);
  if (!path.ok()) {
    respond(MakeErrorResponse(path.status()));
    return;
  }
  bool allow_mmap = true;
  Result<JsonValue> parsed = ParseJson(request.body);
  if (const JsonValue* mmap = parsed.value().Find("mmap"); mmap != nullptr) {
    if (!mmap->is_bool()) {
      respond(MakeErrorResponse(
          Status::InvalidArgument("mmap must be a boolean")));
      return;
    }
    allow_mmap = mmap->AsBool();
  }
  // Validate + map + reconstruct BEFORE unhosting anything: a bad file
  // must leave the currently hosted collection serving. The service's
  // LoadCollection does exactly that ordering internally only for the
  // adopt step, so the replace here removes only after the file parsed —
  // the load is retried once if a racing PUT re-created the name between
  // the remove and the adopt.
  Status loaded = service_.LoadCollection(collection, path.value(), allow_mmap);
  if (loaded.IsInvalidArgument() &&
      loaded.message().find("already hosted") != std::string::npos) {
    (void)service_.RemoveCollection(collection);
    loaded = service_.LoadCollection(collection, path.value(), allow_mmap);
  }
  if (!loaded.ok()) {
    respond(MakeErrorResponse(loaded));
    return;
  }
  Result<CollectionInfo> info = service_.GetCollectionInfo(collection);
  if (!info.ok()) {
    respond(MakeErrorResponse(info.status()));
    return;
  }
  respond(JsonResponse(201, InfoJson(info.value())));
}

void SearchHandler::HandleDelete(const std::string& collection,
                                 HttpResponder respond) {
  const Status removed = service_.RemoveCollection(collection);
  if (!removed.ok()) {
    respond(MakeErrorResponse(removed));
    return;
  }
  JsonValue body = JsonValue::Object();
  body.Set("removed", collection);
  respond(JsonResponse(200, body));
}

void SearchHandler::HandleGetCollection(const std::string& collection,
                                        HttpResponder respond) {
  Result<CollectionInfo> info = service_.GetCollectionInfo(collection);
  if (!info.ok()) {
    respond(MakeErrorResponse(info.status()));
    return;
  }
  respond(JsonResponse(200, InfoJson(info.value())));
}

void SearchHandler::HandleListCollections(HttpResponder respond) {
  JsonValue names = JsonValue::Array();
  for (const std::string& name : service_.CollectionNames()) {
    names.Append(name);
  }
  JsonValue body = JsonValue::Object();
  body.Set("collections", std::move(names));
  respond(JsonResponse(200, body));
}

void SearchHandler::HandleStats(HttpResponder respond) {
  // ONE Stats() call builds the whole document. Stats() snapshots every
  // counter under the service mutex in one critical section, so the
  // response is internally consistent: the per-dispatcher dispatch counts
  // sum exactly to the per-collection total. Composing the body from
  // several service reads (queue_depth() here, Stats() there) would break
  // that invariant under load — the regression test asserts it over the
  // wire.
  const ServiceStats stats = service_.Stats();
  JsonValue body = JsonValue::Object();
  body.Set("isa", stats.isa);
  body.Set("queue_depth", stats.queue_depth);
  body.Set("pool_threads", stats.pool_threads);
  JsonValue dispatchers = JsonValue::Array();
  for (const DispatcherStats& ds : stats.dispatchers) {
    JsonValue entry = JsonValue::Object();
    entry.Set("dispatches", static_cast<size_t>(ds.dispatches));
    entry.Set("busy_fraction", ds.busy_fraction);
    dispatchers.Append(std::move(entry));
  }
  body.Set("dispatchers", std::move(dispatchers));
  JsonValue collections = JsonValue::Object();
  for (const auto& [name, cs] : stats.collections) {
    JsonValue entry = JsonValue::Object();
    entry.Set("admitted", cs.admitted);
    entry.Set("completed", cs.completed);
    entry.Set("rejected", cs.rejected);
    entry.Set("expired", cs.expired);
    entry.Set("cancelled", cs.cancelled);
    entry.Set("dispatches", cs.dispatches);
    entry.Set("shards", cs.shards);
    JsonValue shard_dispatches = JsonValue::Array();
    for (const uint64_t per_shard : cs.shard_dispatches) {
      shard_dispatches.Append(static_cast<size_t>(per_shard));
    }
    entry.Set("shard_dispatches", std::move(shard_dispatches));
    entry.Set("qps", cs.qps);
    entry.Set("queue_wait", LatencyJson(cs.queue_wait));
    entry.Set("latency", LatencyJson(cs.latency));
    entry.Set("count", cs.count);
    entry.Set("quantization", cs.quantization);
    if (cs.quantization != "none") {
      entry.Set("rerank_factor", cs.rerank_factor);
      entry.Set("quantized_bytes", static_cast<size_t>(cs.quantized_bytes));
      entry.Set("rerank_candidates",
                static_cast<size_t>(cs.rerank_candidates));
    }
    entry.Set("source", cs.source);
    if (cs.mapped_bytes > 0) {
      entry.Set("mapped_bytes", static_cast<size_t>(cs.mapped_bytes));
    }
    entry.Set("mutable", cs.is_mutable);
    if (cs.is_mutable) {
      entry.Set("delta", cs.delta);
      entry.Set("delta_blocks", cs.delta_blocks);
      entry.Set("base_blocks", cs.base_blocks);
      entry.Set("tombstones", cs.tombstones);
    }
    entry.Set("added", static_cast<size_t>(cs.added));
    entry.Set("deleted", static_cast<size_t>(cs.deleted));
    entry.Set("compactions", static_cast<size_t>(cs.compactions));
    collections.Set(name, std::move(entry));
  }
  body.Set("collections", std::move(collections));
  respond(JsonResponse(200, body));
}

void SearchHandler::HandleMetrics(HttpResponder respond) {
  // The registry serializes itself; the handler only picks the media type
  // Prometheus scrapers expect for the text exposition format.
  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = service_.metrics().WritePrometheus();
  respond(std::move(response));
}

void SearchHandler::HandleSlowlog(const std::string& collection,
                                  HttpResponder respond) {
  Result<std::vector<SlowQueryEntry>> entries = service_.SlowLog(collection);
  if (!entries.ok()) {
    respond(MakeErrorResponse(entries.status()));
    return;
  }
  JsonValue body = JsonValue::Object();
  body.Set("collection", collection);
  JsonValue list = JsonValue::Array();
  for (const SlowQueryEntry& entry : entries.value()) {
    JsonValue item = JsonValue::Object();
    item.Set("id", static_cast<size_t>(entry.id));
    if (!entry.request_id.empty()) item.Set("request_id", entry.request_id);
    item.Set("outcome", entry.outcome);
    item.Set("k", entry.k);
    item.Set("nprobe", entry.nprobe);
    item.Set("queue_ms", entry.queue_ms);
    item.Set("dispatch_ms", entry.stage_ms);
    item.Set("search_ms", entry.search_ms);
    item.Set("total_ms", entry.total_ms);
    item.Set("counters", CountersJson(entry.counters));
    list.Append(std::move(item));
  }
  body.Set("slowlog", std::move(list));
  respond(JsonResponse(200, body));
}

void SearchHandler::HandleHealthz(HttpResponder respond) {
  // One Stats() snapshot feeds the whole probe body, same consistency
  // argument as HandleStats: queue depth and per-collection counts are
  // from the same critical section.
  const ServiceStats stats = service_.Stats();
  JsonValue body = JsonValue::Object();
  body.Set("status", "ok");
  body.Set("isa", IsaName(DispatchedIsa()));
  body.Set("queue_depth", stats.queue_depth);
  JsonValue collections = JsonValue::Object();
  for (const auto& [name, cs] : stats.collections) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", cs.count);
    entry.Set("source", cs.source);
    collections.Set(name, std::move(entry));
  }
  body.Set("collections", std::move(collections));
  respond(JsonResponse(200, body));
}

}  // namespace pdx
