#ifndef PDX_STORAGE_DUAL_BLOCK_H_
#define PDX_STORAGE_DUAL_BLOCK_H_

#include <cstddef>

#include "common/aligned_buffer.h"
#include "common/types.h"
#include "storage/vector_set.h"

namespace pdx {

/// ADSampling's dual-block horizontal layout: every vector is split at
/// `split_dim` into a head segment and a tail segment, and all heads are
/// stored contiguously ahead of all tails.
///
/// The head block (first Δd dims of every vector) is always scanned, so it
/// caches well; the tail block is touched only for vectors that survive the
/// first hypothesis test. This is the layout the original ADSampling/BSA
/// implementations use and the horizontal baseline PDX is compared against.
class DualBlockStore {
 public:
  DualBlockStore() = default;

  DualBlockStore(DualBlockStore&&) = default;
  DualBlockStore& operator=(DualBlockStore&&) = default;
  DualBlockStore(const DualBlockStore&) = delete;
  DualBlockStore& operator=(const DualBlockStore&) = delete;

  /// Splits each vector at `split_dim` (clamped to [0, dim]).
  static DualBlockStore FromVectorSet(const VectorSet& vectors,
                                      size_t split_dim);

  size_t dim() const { return dim_; }
  size_t count() const { return count_; }
  size_t split_dim() const { return split_dim_; }

  /// First split_dim() dims of vector i (contiguous with other heads).
  const float* Head(size_t i) const { return heads_.data() + i * split_dim_; }

  /// Remaining dim()-split_dim() dims of vector i.
  const float* Tail(size_t i) const {
    return tails_.data() + i * (dim_ - split_dim_);
  }

 private:
  size_t dim_ = 0;
  size_t count_ = 0;
  size_t split_dim_ = 0;
  AlignedBuffer heads_;
  AlignedBuffer tails_;
};

}  // namespace pdx

#endif  // PDX_STORAGE_DUAL_BLOCK_H_
