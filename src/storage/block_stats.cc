#include "storage/block_stats.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "storage/pdx_block.h"

namespace pdx {

namespace {

DimensionStats AllocateStats(size_t dim) {
  DimensionStats stats;
  stats.means.assign(dim, 0.0f);
  stats.variances.assign(dim, 0.0f);
  stats.minimums.assign(dim, std::numeric_limits<float>::infinity());
  stats.maximums.assign(dim, -std::numeric_limits<float>::infinity());
  return stats;
}

}  // namespace

DimensionStats ComputeBlockStats(const PdxBlock& block) {
  const size_t dim = block.dim();
  const size_t n = block.count();
  DimensionStats stats = AllocateStats(dim);
  for (size_t d = 0; d < dim; ++d) {
    const float* values = block.Dimension(d);
    double sum = 0.0;
    double sum_sq = 0.0;
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (size_t i = 0; i < n; ++i) {
      const float v = values[i];
      sum += v;
      sum_sq += double(v) * double(v);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double mean = (n > 0) ? sum / double(n) : 0.0;
    stats.means[d] = static_cast<float>(mean);
    stats.variances[d] =
        (n > 0) ? static_cast<float>(std::max(0.0, sum_sq / double(n) -
                                                       mean * mean))
                : 0.0f;
    stats.minimums[d] = lo;
    stats.maximums[d] = hi;
  }
  return stats;
}

DimensionStats ComputeStats(const float* data, size_t count, size_t dim) {
  DimensionStats stats = AllocateStats(dim);
  std::vector<double> sum(dim, 0.0);
  std::vector<double> sum_sq(dim, 0.0);
  for (size_t i = 0; i < count; ++i) {
    const float* row = data + i * dim;
    for (size_t d = 0; d < dim; ++d) {
      const float v = row[d];
      sum[d] += v;
      sum_sq[d] += double(v) * double(v);
      stats.minimums[d] = std::min(stats.minimums[d], v);
      stats.maximums[d] = std::max(stats.maximums[d], v);
    }
  }
  if (count > 0) {
    for (size_t d = 0; d < dim; ++d) {
      const double mean = sum[d] / double(count);
      stats.means[d] = static_cast<float>(mean);
      stats.variances[d] = static_cast<float>(
          std::max(0.0, sum_sq[d] / double(count) - mean * mean));
    }
  }
  return stats;
}

DimensionStats MergeStats(const DimensionStats& a, size_t count_a,
                          const DimensionStats& b, size_t count_b) {
  assert(a.dim() == b.dim());
  const size_t dim = a.dim();
  if (count_a == 0) {
    DimensionStats out = b;
    return out;
  }
  if (count_b == 0) {
    DimensionStats out = a;
    return out;
  }
  DimensionStats out = AllocateStats(dim);
  const double na = static_cast<double>(count_a);
  const double nb = static_cast<double>(count_b);
  const double n = na + nb;
  for (size_t d = 0; d < dim; ++d) {
    const double delta = double(b.means[d]) - double(a.means[d]);
    const double mean = a.means[d] + delta * nb / n;
    // Chan et al. parallel variance merge.
    const double m2 = double(a.variances[d]) * na +
                      double(b.variances[d]) * nb +
                      delta * delta * na * nb / n;
    out.means[d] = static_cast<float>(mean);
    out.variances[d] = static_cast<float>(m2 / n);
    out.minimums[d] = std::min(a.minimums[d], b.minimums[d]);
    out.maximums[d] = std::max(a.maximums[d], b.maximums[d]);
  }
  return out;
}

}  // namespace pdx
