#include "storage/pdx_block.h"

#include <cassert>

namespace pdx {

PdxBlock::PdxBlock(size_t dim, size_t count)
    : dim_(dim),
      count_(count),
      owned_(dim * count),
      data_(owned_.data()),
      ids_(count, kInvalidVectorId) {}

PdxBlock::PdxBlock(size_t dim, size_t count, float* external)
    : dim_(dim),
      count_(count),
      data_(external),
      ids_(count, kInvalidVectorId) {}

void PdxBlock::FillLane(size_t i, const float* row, VectorId id) {
  assert(i < count_);
  for (size_t d = 0; d < dim_; ++d) {
    data_[d * count_ + i] = row[d];
  }
  ids_[i] = id;
}

void PdxBlock::ExtractLane(size_t i, float* out) const {
  assert(i < count_);
  for (size_t d = 0; d < dim_; ++d) {
    out[d] = data_[d * count_ + i];
  }
}

}  // namespace pdx
