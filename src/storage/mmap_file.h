#ifndef PDX_STORAGE_MMAP_FILE_H_
#define PDX_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace pdx {

/// RAII read-only memory mapping of a whole file.
///
/// The load-a-view-not-a-copy half of the persistence story: a mapped
/// collection file costs no read() of the vector payload at open time, the
/// kernel pages data in on first touch, and N processes mapping the same
/// file share one physical copy of the arena. The mapping is PROT_READ —
/// every structure built over it must treat the bytes as immutable (PDX
/// blocks are never written after packing, which is what makes the view
/// construction safe).
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. Fails with IoError when the file cannot be
  /// opened, stat'ed, or mapped (an empty file also fails — there is
  /// nothing to map, and no valid collection file is empty).
  static Result<MmapFile> Open(const std::string& path);

  bool mapped() const { return data_ != nullptr; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  void Unmap();

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace pdx

#endif  // PDX_STORAGE_MMAP_FILE_H_
