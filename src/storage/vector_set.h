#ifndef PDX_STORAGE_VECTOR_SET_H_
#define PDX_STORAGE_VECTOR_SET_H_

#include <cstddef>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/types.h"

namespace pdx {

/// A collection of float32 vectors in the traditional horizontal
/// ("N-ary", vector-by-vector) layout: vector i occupies the contiguous
/// range data()[i*dim .. (i+1)*dim).
///
/// This is the layout of .fvecs files and of every mainstream vector
/// system's raw storage; it serves both as the ingestion format and as the
/// baseline layout that PDX is compared against.
class VectorSet {
 public:
  VectorSet() = default;
  /// Creates an empty collection of `dim`-dimensional vectors with space
  /// reserved for `capacity` vectors.
  explicit VectorSet(size_t dim, size_t capacity = 0);

  VectorSet(VectorSet&&) = default;
  VectorSet& operator=(VectorSet&&) = default;
  VectorSet(const VectorSet&) = delete;
  VectorSet& operator=(const VectorSet&) = delete;

  /// Deep copy (explicit, since vectors collections can be large).
  VectorSet Clone() const;

  /// Builds a collection by copying `count` row-major vectors.
  static VectorSet FromRowMajor(const float* data, size_t count, size_t dim);

  size_t dim() const { return dim_; }
  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Pointer to vector `id` (horizontal layout).
  const float* Vector(VectorId id) const { return data_.data() + id * dim_; }
  float* MutableVector(VectorId id) { return data_.data() + id * dim_; }

  const float* data() const { return data_.data(); }
  float* data() { return data_.data(); }

  /// Appends one vector (copy of `values[0..dim)`); returns its id.
  VectorId Append(const float* values);

  /// Appends `count` row-major vectors.
  void AppendBatch(const float* values, size_t count);

  /// Overwrites vector `id` in place. PDX/N-ary stores built from this set
  /// are snapshots; they do not observe later updates.
  void Update(VectorId id, const float* values);

  /// Builds a new collection containing the listed rows in order.
  VectorSet Select(const std::vector<VectorId>& ids) const;

  /// Per-dimension arithmetic means over the whole collection.
  std::vector<float> DimensionMeans() const;

 private:
  void EnsureCapacity(size_t vectors);

  size_t dim_ = 0;
  size_t count_ = 0;
  size_t capacity_ = 0;
  AlignedBuffer data_;
};

}  // namespace pdx

#endif  // PDX_STORAGE_VECTOR_SET_H_
