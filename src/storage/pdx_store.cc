#include "storage/pdx_store.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <numeric>

namespace pdx {

namespace {

// Blocks start on 16-float (64-byte) boundaries within the arena.
size_t AlignedBlockFloats(size_t dim, size_t n) {
  const size_t floats = dim * n;
  return (floats + 15) / 16 * 16;
}

std::atomic<uint64_t> g_pack_count{0};

}  // namespace

uint64_t PdxStorePackCount() {
  return g_pack_count.load(std::memory_order_relaxed);
}

void PdxStore::AppendGroup(const VectorSet& vectors,
                           const std::vector<VectorId>& ids,
                           size_t block_capacity, size_t& arena_offset,
                           PdxStore& store) {
  size_t offset = 0;
  while (offset < ids.size()) {
    const size_t n = std::min(block_capacity, ids.size() - offset);
    PdxBlock block(vectors.dim(), n, store.arena_.data() + arena_offset);
    arena_offset += AlignedBlockFloats(vectors.dim(), n);
    for (size_t i = 0; i < n; ++i) {
      const VectorId id = ids[offset + i];
      block.FillLane(i, vectors.Vector(id), id);
    }
    store.block_stats_.push_back(ComputeBlockStats(block));
    store.blocks_.push_back(std::move(block));
    offset += n;
  }
}

PdxStore PdxStore::FromVectorSet(const VectorSet& vectors,
                                 size_t block_capacity) {
  assert(block_capacity > 0);
  std::vector<VectorId> all(vectors.count());
  std::iota(all.begin(), all.end(), 0);
  return FromGroups(vectors, {all}, block_capacity);
}

PdxStore PdxStore::FromGroups(const VectorSet& vectors,
                              const std::vector<std::vector<VectorId>>& groups,
                              size_t block_capacity) {
  assert(block_capacity > 0);
  g_pack_count.fetch_add(1, std::memory_order_relaxed);
  PdxStore store;
  store.dim_ = vectors.dim();

  // Size the arena: every group contributes ceil(|g|/capacity) blocks.
  size_t total_floats = 0;
  for (const std::vector<VectorId>& group : groups) {
    size_t remaining = group.size();
    while (remaining > 0) {
      const size_t n = std::min(block_capacity, remaining);
      total_floats += AlignedBlockFloats(vectors.dim(), n);
      remaining -= n;
    }
  }
  store.arena_.Reset(total_floats);

  size_t arena_offset = 0;
  store.group_block_start_.push_back(0);
  for (const std::vector<VectorId>& group : groups) {
    AppendGroup(vectors, group, block_capacity, arena_offset, store);
    store.group_block_start_.push_back(store.blocks_.size());
    store.count_ += group.size();
  }
  // Collection-level stats: merge the per-block stats.
  if (!store.blocks_.empty()) {
    DimensionStats merged = store.block_stats_[0];
    size_t merged_count = store.blocks_[0].count();
    for (size_t b = 1; b < store.blocks_.size(); ++b) {
      merged = MergeStats(merged, merged_count, store.block_stats_[b],
                          store.blocks_[b].count());
      merged_count += store.blocks_[b].count();
    }
    store.stats_ = std::move(merged);
  }
  return store;
}

PdxStore PdxStore::FromView(size_t dim, size_t count,
                            const std::vector<uint32_t>& block_counts,
                            std::vector<size_t> group_block_start,
                            const std::vector<VectorId>& ids,
                            DimensionStats stats,
                            std::vector<DimensionStats> block_stats,
                            const float* arena) {
  assert(block_stats.size() == block_counts.size());
  PdxStore store;
  store.dim_ = dim;
  store.count_ = count;
  store.group_block_start_ = std::move(group_block_start);
  store.block_stats_ = std::move(block_stats);
  store.stats_ = std::move(stats);
  store.blocks_.reserve(block_counts.size());
  // arena_ stays empty: the blocks view the caller's region at the exact
  // offsets FromGroups lays out, so arena_data()/arena_floats() and every
  // scan path behave identically to an owned store.
  size_t arena_offset = 0;
  size_t id_offset = 0;
  for (const uint32_t n : block_counts) {
    PdxBlock block(dim, n, const_cast<float*>(arena) + arena_offset);
    block.AssignIds(
        std::vector<VectorId>(ids.begin() + id_offset,
                              ids.begin() + id_offset + n));
    store.blocks_.push_back(std::move(block));
    arena_offset += AlignedBlockFloats(dim, n);
    id_offset += n;
  }
  assert(id_offset == count);
  return store;
}

size_t PdxStore::arena_floats() const {
  size_t total = 0;
  for (const PdxBlock& block : blocks_) {
    total += AlignedBlockFloats(dim_, block.count());
  }
  return total;
}

VectorSet PdxStore::ToVectorSet() const {
  // Rebuild rows in global-id order so the result is comparable to the
  // original collection (blocks may hold vectors in bucket order).
  VectorSet out(dim_, count_);
  std::vector<float> row(dim_ * count_, 0.0f);
  for (const PdxBlock& block : blocks_) {
    std::vector<float> lane(dim_);
    for (size_t i = 0; i < block.count(); ++i) {
      block.ExtractLane(i, lane.data());
      const VectorId id = block.id(i);
      assert(id < count_);
      std::copy(lane.begin(), lane.end(), row.begin() + size_t(id) * dim_);
    }
  }
  out.AppendBatch(row.data(), count_);
  return out;
}

}  // namespace pdx
