#ifndef PDX_STORAGE_BLOCK_STATS_H_
#define PDX_STORAGE_BLOCK_STATS_H_

#include <cstddef>
#include <vector>

namespace pdx {

class PdxBlock;

/// Per-dimension summary statistics of one PDX block (or of a whole
/// collection).
///
/// The paper's "metadata per block" (Section 3): like DuckDB's per-rowgroup
/// zone maps, blocks carry statistics that search algorithms exploit —
/// PDX-BOND ranks dimensions by the distance between the query value and
/// the collection mean; BSA can watch variances for distribution shift.
struct DimensionStats {
  std::vector<float> means;
  std::vector<float> variances;
  std::vector<float> minimums;
  std::vector<float> maximums;

  size_t dim() const { return means.size(); }
};

/// Computes stats over one block. Cheap in PDX layout: each dimension's
/// values are contiguous.
DimensionStats ComputeBlockStats(const PdxBlock& block);

/// Computes stats over `count` horizontal row-major vectors.
DimensionStats ComputeStats(const float* data, size_t count, size_t dim);

/// Merges partial stats weighted by the observation counts (parallel-merge
/// formula for mean/variance; min/max by comparison).
DimensionStats MergeStats(const DimensionStats& a, size_t count_a,
                          const DimensionStats& b, size_t count_b);

}  // namespace pdx

#endif  // PDX_STORAGE_BLOCK_STATS_H_
