#ifndef PDX_STORAGE_DELTA_STORE_H_
#define PDX_STORAGE_DELTA_STORE_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "storage/pdx_block.h"
#include "storage/vector_set.h"

namespace pdx {

/// The append region of a live (mutable) collection: PDX blocks that grow
/// one vector at a time, the paper's Section 3 ingest story made concrete.
///
/// Appending repacks ONLY the partial tail block — full blocks are sealed
/// and never touched again — so one append costs
/// O(block_capacity x dim) regardless of how many vectors the region (or
/// the immutable base in front of it) already holds. That bound is the
/// whole point: it is what makes ingest latency independent of collection
/// size, and the invariant the delta-store tests pin (a sealed block's
/// storage address never changes across later appends).
///
/// Alongside the blocks the store keeps the horizontal rows (the compaction
/// source — rebuilding the base needs raw rows, not transposed lanes) and
/// the caller-assigned slot id of every row, which is the global id the
/// block lanes carry into search results.
class DeltaStore {
 public:
  DeltaStore() = default;
  /// An empty region for `dim`-dimensional vectors packed into blocks of
  /// `block_capacity` lanes (0 = kPdxBlockSize).
  DeltaStore(size_t dim, size_t block_capacity);

  DeltaStore(DeltaStore&&) = default;
  DeltaStore& operator=(DeltaStore&&) = default;
  DeltaStore(const DeltaStore&) = delete;
  DeltaStore& operator=(const DeltaStore&) = delete;

  size_t dim() const { return dim_; }
  size_t block_capacity() const { return block_capacity_; }
  /// Rows appended so far (tombstoned rows included — deletion is the
  /// owner's overlay, not the store's concern).
  size_t count() const { return rows_.count(); }
  bool empty() const { return rows_.empty(); }
  size_t num_blocks() const { return blocks_.size(); }
  const PdxBlock& block(size_t b) const { return blocks_[b]; }

  /// The horizontal copies of the appended rows, in append order: row i of
  /// this set is the vector `Append` was called with i-th.
  const VectorSet& rows() const { return rows_; }
  /// Slot id row i was appended under.
  VectorId slot(size_t i) const { return slots_[i]; }

  /// Appends one `dim()`-float row under global id `slot`. Repacks the
  /// partial tail block only (never a sealed full block); when the tail
  /// reaches block_capacity it seals and the next append opens a new tail.
  void Append(const float* row, VectorId slot);

  /// Lifetime count of tail repacks — every append is exactly one, which
  /// the tests use to prove no append ever cascades into older blocks.
  size_t tail_repacks() const { return tail_repacks_; }

  /// Drops every row and block (post-compaction reset). Capacity and dim
  /// are kept.
  void Clear();

 private:
  size_t dim_ = 0;
  size_t block_capacity_ = kPdxBlockSize;
  VectorSet rows_;
  std::vector<VectorId> slots_;
  /// Self-owning dimension-major blocks; all but the last hold exactly
  /// block_capacity lanes, the last holds the partial tail.
  std::vector<PdxBlock> blocks_;
  size_t tail_repacks_ = 0;
};

}  // namespace pdx

#endif  // PDX_STORAGE_DELTA_STORE_H_
