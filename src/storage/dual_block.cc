#include "storage/dual_block.h"

#include <algorithm>
#include <cstring>

namespace pdx {

DualBlockStore DualBlockStore::FromVectorSet(const VectorSet& vectors,
                                             size_t split_dim) {
  DualBlockStore store;
  store.dim_ = vectors.dim();
  store.count_ = vectors.count();
  store.split_dim_ = std::min(split_dim, store.dim_);
  const size_t head_dim = store.split_dim_;
  const size_t tail_dim = store.dim_ - head_dim;
  store.heads_.Reset(store.count_ * head_dim);
  store.tails_.Reset(store.count_ * tail_dim);
  for (size_t i = 0; i < store.count_; ++i) {
    const float* row = vectors.Vector(static_cast<VectorId>(i));
    if (head_dim > 0) {
      std::memcpy(store.heads_.data() + i * head_dim, row,
                  head_dim * sizeof(float));
    }
    if (tail_dim > 0) {
      std::memcpy(store.tails_.data() + i * tail_dim, row + head_dim,
                  tail_dim * sizeof(float));
    }
  }
  return store;
}

}  // namespace pdx
