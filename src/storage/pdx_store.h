#ifndef PDX_STORAGE_PDX_STORE_H_
#define PDX_STORAGE_PDX_STORE_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "storage/block_stats.h"
#include "storage/pdx_block.h"
#include "storage/vector_set.h"

namespace pdx {

/// A collection stored in the PDX layout: a sequence of dimension-major
/// blocks plus collection-level dimension statistics.
///
/// Blocks either follow the original order (horizontal partitioning, used
/// for exact search) or an explicit grouping (IVF buckets — Figure 2: the
/// bucket structure naturally maps to PDX blocks). Each block keeps the
/// global ids of its vectors so search results refer to the original rows.
class PdxStore {
 public:
  PdxStore() = default;

  PdxStore(PdxStore&&) = default;
  PdxStore& operator=(PdxStore&&) = default;
  PdxStore(const PdxStore&) = delete;
  PdxStore& operator=(const PdxStore&) = delete;

  /// Builds a store by horizontally partitioning `vectors` into blocks of at
  /// most `block_capacity` vectors, in row order.
  static PdxStore FromVectorSet(const VectorSet& vectors,
                                size_t block_capacity = kPdxBlockSize);

  /// Builds a store whose blocks follow an explicit grouping: group g
  /// becomes ceil(|g| / block_capacity) consecutive blocks. Used to lay IVF
  /// buckets out as PDX blocks; `GroupBlockRange` recovers which blocks
  /// belong to which group.
  static PdxStore FromGroups(const VectorSet& vectors,
                             const std::vector<std::vector<VectorId>>& groups,
                             size_t block_capacity = kPdxBlockSize);

  /// Reconstructs a store as a zero-copy view over an externally owned
  /// arena (a loaded collection image): blocks point into `arena` at the
  /// same 64-byte-aligned offsets FromGroups would have produced, and no
  /// vector data is copied or repacked. `stats`/`block_stats` are the
  /// persisted statistics (re-deriving them would re-run the float merge
  /// and could drift). The caller must keep `arena` alive for the store's
  /// lifetime and never mutate it — PDX blocks are read-only after packing,
  /// which is what makes serving straight from a PROT_READ mapping safe.
  static PdxStore FromView(size_t dim, size_t count,
                           const std::vector<uint32_t>& block_counts,
                           std::vector<size_t> group_block_start,
                           const std::vector<VectorId>& ids,
                           DimensionStats stats,
                           std::vector<DimensionStats> block_stats,
                           const float* arena);

  size_t dim() const { return dim_; }
  size_t count() const { return count_; }
  size_t num_blocks() const { return blocks_.size(); }

  const PdxBlock& block(size_t b) const { return blocks_[b]; }

  /// Number of vector groups (1 for FromVectorSet; #buckets for
  /// FromGroups).
  size_t num_groups() const { return group_block_start_.size() - 1; }

  /// Half-open block range [first, last) of group g.
  std::pair<size_t, size_t> GroupBlockRange(size_t g) const {
    return {group_block_start_[g], group_block_start_[g + 1]};
  }

  /// Collection-level per-dimension statistics (merged over blocks).
  const DimensionStats& stats() const { return stats_; }

  /// Per-block statistics, parallel to blocks().
  const std::vector<DimensionStats>& block_stats() const {
    return block_stats_;
  }

  /// Reconstructs the horizontal layout (transpose back); used by tests to
  /// verify the round-trip and by re-ranking paths.
  VectorSet ToVectorSet() const;

  /// Start of the contiguous arena backing every block (null when empty).
  /// Valid for both owned stores and FromView stores.
  const float* arena_data() const {
    return blocks_.empty() ? nullptr : blocks_.front().data();
  }

  /// Total floats in the arena, including per-block alignment padding.
  size_t arena_floats() const;

 private:
  static void AppendGroup(const VectorSet& vectors,
                          const std::vector<VectorId>& ids,
                          size_t block_capacity, size_t& arena_offset,
                          PdxStore& store);

  size_t dim_ = 0;
  size_t count_ = 0;
  /// One contiguous allocation backing every block, in block order: a
  /// block-by-block scan is a single sequential memory stream.
  AlignedBuffer arena_;
  std::vector<PdxBlock> blocks_;
  std::vector<DimensionStats> block_stats_;
  std::vector<size_t> group_block_start_;
  DimensionStats stats_;
};

/// Process-wide count of PdxStore packing runs (FromGroups calls). The
/// persistence tests pin "loading a collection does zero packing work" by
/// snapshotting this counter around CollectionImage loads.
uint64_t PdxStorePackCount();

}  // namespace pdx

#endif  // PDX_STORAGE_PDX_STORE_H_
