#include "storage/dsm_store.h"

namespace pdx {

DsmStore DsmStore::FromVectorSet(const VectorSet& vectors) {
  DsmStore store;
  store.dim_ = vectors.dim();
  store.count_ = vectors.count();
  store.data_.Reset(store.dim_ * store.count_);
  for (size_t i = 0; i < store.count_; ++i) {
    const float* row = vectors.Vector(static_cast<VectorId>(i));
    for (size_t d = 0; d < store.dim_; ++d) {
      store.data_[d * store.count_ + i] = row[d];
    }
  }
  return store;
}

}  // namespace pdx
