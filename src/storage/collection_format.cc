#include "storage/collection_format.h"

#include <cstdio>
#include <cstring>
#include <utility>

namespace pdx {

namespace {

// Mirrors pdx_store.cc: blocks start on 16-float (64-byte) boundaries
// within the arena, so the arena size is recoverable from block counts.
size_t AlignedBlockFloats(size_t dim, size_t n) {
  const size_t floats = dim * n;
  return (floats + 15) / 16 * 16;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

constexpr size_t kHeaderBytes = 32;
constexpr size_t kEntryBytes = 32;
constexpr size_t kHeaderChecksumOffset = 24;

/// Bounds-checked little-endian reader over one section payload. Every
/// Read* returns false instead of walking past the end, so a malformed
/// section degrades to Status::Corruption at the call site, never a crash.
class ByteReader {
 public:
  explicit ByteReader(SectionView view)
      : cursor_(view.data), end_(view.data + view.size) {}

  size_t remaining() const { return static_cast<size_t>(end_ - cursor_); }
  bool AtEnd() const { return cursor_ == end_; }
  const uint8_t* cursor() const { return cursor_; }

  bool ReadU32(uint32_t* out) { return ReadPod(out); }
  bool ReadU64(uint64_t* out) { return ReadPod(out); }
  bool ReadI64(int64_t* out) { return ReadPod(out); }

  bool ReadU32Array(size_t n, std::vector<uint32_t>* out) {
    if (n > remaining() / sizeof(uint32_t)) return false;
    out->resize(n);
    std::memcpy(out->data(), cursor_, n * sizeof(uint32_t));
    cursor_ += n * sizeof(uint32_t);
    return true;
  }

  bool ReadU64Array(size_t n, std::vector<uint64_t>* out) {
    if (n > remaining() / sizeof(uint64_t)) return false;
    out->resize(n);
    std::memcpy(out->data(), cursor_, n * sizeof(uint64_t));
    cursor_ += n * sizeof(uint64_t);
    return true;
  }

  bool ReadU8Array(size_t n, std::vector<uint8_t>* out) {
    if (n > remaining()) return false;
    out->resize(n);
    std::memcpy(out->data(), cursor_, n);
    cursor_ += n;
    return true;
  }

  bool ReadFloats(size_t n, float* out) {
    if (n > remaining() / sizeof(float)) return false;
    std::memcpy(out, cursor_, n * sizeof(float));
    cursor_ += n * sizeof(float);
    return true;
  }

  bool ReadFloatVector(size_t n, std::vector<float>* out) {
    if (n > remaining() / sizeof(float)) return false;
    out->resize(n);
    return ReadFloats(n, out->data());
  }

  /// Borrows `n` floats in place (caller must know the bytes stay alive and
  /// are at least 4-byte aligned — section payloads start 8-byte aligned and
  /// all preceding fields are multiples of 4 bytes).
  bool ViewFloats(size_t n, const float** out) {
    if (n > remaining() / sizeof(float)) return false;
    *out = reinterpret_cast<const float*>(cursor_);
    cursor_ += n * sizeof(float);
    return true;
  }

 private:
  template <typename T>
  bool ReadPod(T* out) {
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return true;
  }

  const uint8_t* cursor_;
  const uint8_t* end_;
};

template <typename T>
void AppendPod(std::vector<uint8_t>& out, const T& value) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

void AppendBytes(std::vector<uint8_t>& out, const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

/// One section staged for writing: either an owned serialized payload or a
/// window borrowed from the exporting searcher (arena, raw rows).
struct PendingSection {
  SectionKind kind = SectionKind::kCollectionMeta;
  uint32_t unit = 0;
  std::vector<uint8_t> owned;
  const uint8_t* external = nullptr;
  uint64_t external_size = 0;
  bool align64 = false;

  const uint8_t* data() const { return external != nullptr ? external : owned.data(); }
  uint64_t size() const { return external != nullptr ? external_size : owned.size(); }
};

void AppendStoreSections(const SavedStore& store, uint32_t unit,
                         std::vector<PendingSection>& sections) {
  PendingSection meta;
  meta.kind = SectionKind::kStoreMeta;
  meta.unit = unit;
  AppendPod(meta.owned, store.dim);
  AppendPod(meta.owned, store.count);
  AppendPod(meta.owned, static_cast<uint64_t>(store.block_counts.size()));
  AppendPod(meta.owned,
            static_cast<uint64_t>(store.group_block_start.size() - 1));
  AppendPod(meta.owned, store.arena_floats);
  AppendBytes(meta.owned, store.block_counts.data(),
              store.block_counts.size() * sizeof(uint32_t));
  AppendBytes(meta.owned, store.group_block_start.data(),
              store.group_block_start.size() * sizeof(uint64_t));
  sections.push_back(std::move(meta));

  PendingSection ids;
  ids.kind = SectionKind::kStoreIds;
  ids.unit = unit;
  AppendBytes(ids.owned, store.ids.data(), store.ids.size() * sizeof(uint32_t));
  sections.push_back(std::move(ids));

  PendingSection stats;
  stats.kind = SectionKind::kStoreStats;
  stats.unit = unit;
  AppendBytes(stats.owned, store.stats.data(),
              store.stats.size() * sizeof(float));
  sections.push_back(std::move(stats));

  PendingSection arena;
  arena.kind = SectionKind::kStoreArena;
  arena.unit = unit;
  arena.external = reinterpret_cast<const uint8_t*>(store.arena);
  arena.external_size = store.arena_floats * sizeof(float);
  arena.align64 = true;
  sections.push_back(std::move(arena));
}

Status ReadStats(ByteReader& reader, size_t dim, DimensionStats* out) {
  if (!reader.ReadFloatVector(dim, &out->means) ||
      !reader.ReadFloatVector(dim, &out->variances) ||
      !reader.ReadFloatVector(dim, &out->minimums) ||
      !reader.ReadFloatVector(dim, &out->maximums)) {
    return Status::Corruption("collection file: truncated stats section");
  }
  return Status::OK();
}

}  // namespace

uint64_t Fnv1a64(const uint8_t* data, size_t size, uint64_t seed) {
  uint64_t hash = seed != 0 ? seed : kFnvOffset;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= kFnvPrime;
  }
  return hash;
}

SavedStore ExportStore(const PdxStore& store) {
  SavedStore out;
  out.dim = store.dim();
  out.count = store.count();
  out.block_counts.reserve(store.num_blocks());
  for (size_t b = 0; b < store.num_blocks(); ++b) {
    const PdxBlock& block = store.block(b);
    out.block_counts.push_back(static_cast<uint32_t>(block.count()));
    out.ids.insert(out.ids.end(), block.ids().begin(), block.ids().end());
  }
  out.group_block_start.reserve(store.num_groups() + 1);
  out.group_block_start.push_back(0);
  for (size_t g = 0; g < store.num_groups(); ++g) {
    out.group_block_start.push_back(store.GroupBlockRange(g).second);
  }
  const auto append_stats = [&out](const DimensionStats& stats) {
    out.stats.insert(out.stats.end(), stats.means.begin(), stats.means.end());
    out.stats.insert(out.stats.end(), stats.variances.begin(),
                     stats.variances.end());
    out.stats.insert(out.stats.end(), stats.minimums.begin(),
                     stats.minimums.end());
    out.stats.insert(out.stats.end(), stats.maximums.begin(),
                     stats.maximums.end());
  };
  append_stats(store.stats());
  for (const DimensionStats& stats : store.block_stats()) {
    append_stats(stats);
  }
  out.arena = store.arena_data();
  out.arena_floats = store.arena_floats();
  return out;
}

Status WriteCollectionFile(const std::string& path,
                           const SavedCollection& saved) {
  std::vector<PendingSection> sections;

  PendingSection meta;
  meta.kind = SectionKind::kCollectionMeta;
  meta.unit = 0;
  AppendPod(meta.owned, saved.meta);
  sections.push_back(std::move(meta));

  for (size_t s = 0; s < saved.shards.size(); ++s) {
    const SavedShard& shard = saved.shards[s];
    const uint32_t shard_unit = static_cast<uint32_t>(s);
    if (shard.has_quant) {
      // The quantized tier persists no float PDX store: its state is the
      // per-dimension parameters, the block-order code arena, and the
      // full-precision rerank rows (both arenas mmap-served at load).
      const uint64_t qdim = shard.quant_offsets.size();
      const uint64_t qcount = qdim == 0 ? 0 : shard.quant_codes_bytes / qdim;

      PendingSection params;
      params.kind = SectionKind::kQuantParams;
      params.unit = shard_unit;
      AppendPod(params.owned, qdim);
      AppendPod(params.owned, qcount);
      AppendBytes(params.owned, shard.quant_offsets.data(),
                  shard.quant_offsets.size() * sizeof(float));
      AppendBytes(params.owned, shard.quant_scales.data(),
                  shard.quant_scales.size() * sizeof(float));
      sections.push_back(std::move(params));

      PendingSection codes;
      codes.kind = SectionKind::kQuantCodes;
      codes.unit = shard_unit;
      codes.external = shard.quant_codes;
      codes.external_size = shard.quant_codes_bytes;
      codes.align64 = true;
      sections.push_back(std::move(codes));

      PendingSection qrows;
      qrows.kind = SectionKind::kQuantRows;
      qrows.unit = shard_unit;
      qrows.external = reinterpret_cast<const uint8_t*>(shard.quant_rows);
      qrows.external_size = qcount * qdim * sizeof(float);
      qrows.align64 = true;
      sections.push_back(std::move(qrows));
    } else {
      AppendStoreSections(shard.store, 2 * shard_unit, sections);
    }
    if (shard.has_ivf) {
      AppendStoreSections(shard.centroids, 2 * shard_unit + 1, sections);

      PendingSection buckets;
      buckets.kind = SectionKind::kIvfBuckets;
      buckets.unit = shard_unit;
      AppendPod(buckets.owned,
                static_cast<uint64_t>(shard.bucket_offsets.size() - 1));
      AppendPod(buckets.owned, static_cast<uint64_t>(shard.bucket_ids.size()));
      AppendBytes(buckets.owned, shard.bucket_offsets.data(),
                  shard.bucket_offsets.size() * sizeof(uint64_t));
      AppendBytes(buckets.owned, shard.bucket_ids.data(),
                  shard.bucket_ids.size() * sizeof(uint32_t));
      sections.push_back(std::move(buckets));

      PendingSection rows;
      rows.kind = SectionKind::kIvfCentroidRows;
      rows.unit = shard_unit;
      AppendBytes(rows.owned, shard.centroid_rows.data(),
                  shard.centroid_rows.size() * sizeof(float));
      sections.push_back(std::move(rows));
    }
    if (shard.ads_rotation.rows() > 0) {
      PendingSection rot;
      rot.kind = SectionKind::kPrunerRotation;
      rot.unit = shard_unit;
      AppendPod(rot.owned, static_cast<uint64_t>(shard.ads_rotation.rows()));
      AppendPod(rot.owned, static_cast<uint64_t>(shard.ads_rotation.cols()));
      AppendBytes(
          rot.owned, shard.ads_rotation.data(),
          shard.ads_rotation.rows() * shard.ads_rotation.cols() * sizeof(float));
      sections.push_back(std::move(rot));
    }
    if (shard.pca_components.rows() > 0) {
      PendingSection pca;
      pca.kind = SectionKind::kPrunerPca;
      pca.unit = shard_unit;
      AppendPod(pca.owned, static_cast<uint64_t>(shard.pca_mean.size()));
      AppendBytes(pca.owned, shard.pca_mean.data(),
                  shard.pca_mean.size() * sizeof(float));
      AppendBytes(pca.owned, shard.pca_variance.data(),
                  shard.pca_variance.size() * sizeof(float));
      AppendPod(pca.owned, static_cast<uint64_t>(shard.pca_components.rows()));
      AppendPod(pca.owned, static_cast<uint64_t>(shard.pca_components.cols()));
      AppendBytes(pca.owned, shard.pca_components.data(),
                  shard.pca_components.rows() * shard.pca_components.cols() *
                      sizeof(float));
      sections.push_back(std::move(pca));
    }
  }

  if (saved.meta.mutable_snapshot != 0) {
    PendingSection raw;
    raw.kind = SectionKind::kRawRows;
    raw.unit = 0;
    raw.external = reinterpret_cast<const uint8_t*>(saved.raw_rows);
    raw.external_size =
        saved.raw_row_count * saved.meta.dim * sizeof(float);
    raw.align64 = true;
    sections.push_back(std::move(raw));

    PendingSection delta;
    delta.kind = SectionKind::kDeltaRows;
    delta.unit = 0;
    AppendPod(delta.owned, saved.delta_row_count);
    AppendPod(delta.owned, saved.meta.dim);
    AppendBytes(delta.owned, saved.delta_slots.data(),
                saved.delta_slots.size() * sizeof(uint32_t));
    if (saved.delta_row_count > 0) {
      AppendBytes(delta.owned, saved.delta_rows,
                  saved.delta_row_count * saved.meta.dim * sizeof(float));
    }
    sections.push_back(std::move(delta));

    PendingSection tombs;
    tombs.kind = SectionKind::kTombstones;
    tombs.unit = 0;
    AppendPod(tombs.owned, static_cast<uint64_t>(saved.slot_ids.size()));
    AppendBytes(tombs.owned, saved.slot_ids.data(),
                saved.slot_ids.size() * sizeof(uint64_t));
    AppendBytes(tombs.owned, saved.dead.data(),
                saved.dead.size() * sizeof(uint8_t));
    sections.push_back(std::move(tombs));
  }

  // Layout pass: every section starts 8-byte aligned (so fixed-width fields
  // inside payloads read aligned); mmap-served float payloads start on
  // 64-byte file offsets.
  uint64_t offset = kHeaderBytes + kEntryBytes * sections.size();
  std::vector<uint64_t> offsets(sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    const uint64_t align = sections[i].align64 ? 64 : 8;
    offset = (offset + align - 1) / align * align;
    offsets[i] = offset;
    offset += sections[i].size();
  }
  const uint64_t file_size = offset;

  std::vector<uint8_t> table;
  table.reserve(kEntryBytes * sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    AppendPod(table, static_cast<uint32_t>(sections[i].kind));
    AppendPod(table, sections[i].unit);
    AppendPod(table, offsets[i]);
    AppendPod(table, sections[i].size());
    AppendPod(table, Fnv1a64(sections[i].data(), sections[i].size()));
  }

  uint8_t header[kHeaderBytes] = {0};
  std::memcpy(header, kCollectionMagic, 4);
  const uint32_t version = kCollectionFormatVersion;
  std::memcpy(header + 4, &version, 4);
  const uint32_t section_count = static_cast<uint32_t>(sections.size());
  std::memcpy(header + 8, &section_count, 4);
  std::memcpy(header + 16, &file_size, 8);
  const uint64_t header_checksum = Fnv1a64(
      table.data(), table.size(), Fnv1a64(header, kHeaderChecksumOffset));
  std::memcpy(header + kHeaderChecksumOffset, &header_checksum, 8);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const auto write = [&f](const void* data, size_t size) {
    return size == 0 || std::fwrite(data, 1, size, f) == size;
  };
  bool ok = write(header, kHeaderBytes) && write(table.data(), table.size());
  uint64_t written = kHeaderBytes + table.size();
  static constexpr uint8_t kZeros[64] = {0};
  for (size_t i = 0; ok && i < sections.size(); ++i) {
    if (offsets[i] > written) {
      ok = write(kZeros, offsets[i] - written);
      written = offsets[i];
    }
    ok = ok && write(sections[i].data(), sections[i].size());
    written += sections[i].size();
  }
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::remove(path.c_str());
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Result<std::shared_ptr<CollectionImage>> CollectionImage::Load(
    const std::string& path, bool allow_mmap) {
  std::shared_ptr<CollectionImage> image(new CollectionImage());
  image->path_ = path;

  if (allow_mmap) {
    Result<MmapFile> mapped = MmapFile::Open(path);
    if (mapped.ok()) {
      image->mmap_ = std::move(mapped).value();
      image->data_ = image->mmap_.data();
      image->size_ = image->mmap_.size();
    }
  }
  if (image->data_ == nullptr) {
    // Heap fallback: read the whole file into a 64-byte-aligned buffer so
    // arena views get the same alignment guarantees as the mapped path.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IoError("cannot open collection file " + path);
    }
    std::fseek(f, 0, SEEK_END);
    const long end = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (end <= 0) {
      std::fclose(f);
      return Status::Corruption("collection file " + path + ": empty file");
    }
    const size_t size = static_cast<size_t>(end);
    image->heap_.Reset((size + sizeof(float) - 1) / sizeof(float));
    const size_t got =
        std::fread(image->heap_.data(), 1, size, f);
    std::fclose(f);
    if (got != size) {
      return Status::IoError("short read of collection file " + path);
    }
    image->data_ = reinterpret_cast<const uint8_t*>(image->heap_.data());
    image->size_ = size;
  }

  const uint8_t* data = image->data_;
  const size_t size = image->size_;
  if (size < kHeaderBytes) {
    return Status::Corruption("collection file " + path +
                              ": truncated header");
  }
  if (std::memcmp(data, kCollectionMagic, 4) != 0) {
    return Status::Corruption("collection file " + path +
                              ": bad magic (not a PDXC file)");
  }
  uint32_t version = 0;
  std::memcpy(&version, data + 4, 4);
  if (version > kCollectionFormatVersion) {
    return Status::InvalidArgument(
        "collection file " + path + ": format version " +
        std::to_string(version) + " is newer than supported version " +
        std::to_string(kCollectionFormatVersion));
  }
  if (version < 1) {
    return Status::Corruption("collection file " + path +
                              ": invalid format version 0");
  }
  uint32_t section_count = 0;
  std::memcpy(&section_count, data + 8, 4);
  uint64_t recorded_size = 0;
  std::memcpy(&recorded_size, data + 16, 8);
  if (recorded_size != size) {
    return Status::Corruption(
        "collection file " + path + ": size mismatch (header says " +
        std::to_string(recorded_size) + " bytes, file has " +
        std::to_string(size) + ")");
  }
  if (section_count == 0 ||
      section_count > (size - kHeaderBytes) / kEntryBytes) {
    return Status::Corruption("collection file " + path +
                              ": section table exceeds file");
  }
  uint64_t stored_header_checksum = 0;
  std::memcpy(&stored_header_checksum, data + kHeaderChecksumOffset, 8);
  const uint64_t computed_header_checksum =
      Fnv1a64(data + kHeaderBytes, kEntryBytes * section_count,
              Fnv1a64(data, kHeaderChecksumOffset));
  if (stored_header_checksum != computed_header_checksum) {
    return Status::Corruption("collection file " + path +
                              ": header checksum mismatch");
  }

  const uint64_t table_end = kHeaderBytes + kEntryBytes * section_count;
  image->sections_.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint8_t* entry = data + kHeaderBytes + kEntryBytes * i;
    Entry e;
    std::memcpy(&e.kind, entry, 4);
    std::memcpy(&e.unit, entry + 4, 4);
    std::memcpy(&e.offset, entry + 8, 8);
    std::memcpy(&e.size, entry + 16, 8);
    uint64_t checksum = 0;
    std::memcpy(&checksum, entry + 24, 8);
    if (e.offset < table_end || e.offset > size || e.size > size - e.offset) {
      return Status::Corruption("collection file " + path + ": section " +
                                std::to_string(e.kind) + "/" +
                                std::to_string(e.unit) +
                                " extends past end of file");
    }
    if ((static_cast<SectionKind>(e.kind) == SectionKind::kStoreArena ||
         static_cast<SectionKind>(e.kind) == SectionKind::kRawRows ||
         static_cast<SectionKind>(e.kind) == SectionKind::kQuantCodes ||
         static_cast<SectionKind>(e.kind) == SectionKind::kQuantRows) &&
        e.offset % kPdxAlignment != 0) {
      return Status::Corruption("collection file " + path +
                                ": misaligned arena section");
    }
    if (Fnv1a64(data + e.offset, e.size) != checksum) {
      return Status::Corruption("collection file " + path + ": section " +
                                std::to_string(e.kind) + "/" +
                                std::to_string(e.unit) +
                                " checksum mismatch");
    }
    image->sections_.push_back(e);
  }

  Result<SectionView> meta =
      image->Section(SectionKind::kCollectionMeta, 0);
  if (!meta.ok()) return meta.status();
  if (meta.value().size != sizeof(SavedMeta)) {
    return Status::Corruption("collection file " + path +
                              ": unexpected metadata size");
  }
  std::memcpy(&image->meta_, meta.value().data, sizeof(SavedMeta));
  if (image->meta_.dim == 0 || image->meta_.num_shards == 0) {
    return Status::Corruption("collection file " + path +
                              ": metadata has zero dim or shards");
  }
  return image;
}

bool CollectionImage::HasSection(SectionKind kind, uint32_t unit) const {
  for (const Entry& e : sections_) {
    if (e.kind == static_cast<uint32_t>(kind) && e.unit == unit) return true;
  }
  return false;
}

Result<SectionView> CollectionImage::Section(SectionKind kind,
                                             uint32_t unit) const {
  for (const Entry& e : sections_) {
    if (e.kind == static_cast<uint32_t>(kind) && e.unit == unit) {
      return SectionView{data_ + e.offset, e.size};
    }
  }
  return Status::Corruption("collection file " + path_ + ": missing section " +
                            std::to_string(static_cast<uint32_t>(kind)) +
                            "/" + std::to_string(unit));
}

Result<StoreImage> DecodeStore(const CollectionImage& image, uint32_t unit) {
  Result<SectionView> meta = image.Section(SectionKind::kStoreMeta, unit);
  if (!meta.ok()) return meta.status();
  const Status malformed =
      Status::Corruption("collection file " + image.path() +
                         ": malformed store meta (unit " +
                         std::to_string(unit) + ")");

  StoreImage out;
  ByteReader reader(meta.value());
  uint64_t dim = 0, count = 0, num_blocks = 0, num_groups = 0,
           arena_floats = 0;
  if (!reader.ReadU64(&dim) || !reader.ReadU64(&count) ||
      !reader.ReadU64(&num_blocks) || !reader.ReadU64(&num_groups) ||
      !reader.ReadU64(&arena_floats) || dim == 0) {
    return malformed;
  }
  std::vector<uint32_t> block_counts;
  std::vector<uint64_t> group_starts;
  if (!reader.ReadU32Array(num_blocks, &block_counts) ||
      num_groups + 1 < num_groups ||
      !reader.ReadU64Array(num_groups + 1, &group_starts) ||
      !reader.AtEnd()) {
    return malformed;
  }
  uint64_t total = 0;
  uint64_t expected_arena = 0;
  for (uint32_t bc : block_counts) {
    if (bc == 0) return malformed;
    total += bc;
    expected_arena += AlignedBlockFloats(dim, bc);
  }
  if (total != count || expected_arena != arena_floats) return malformed;
  if (group_starts.front() != 0 || group_starts.back() != num_blocks) {
    return malformed;
  }
  for (size_t g = 1; g < group_starts.size(); ++g) {
    if (group_starts[g] < group_starts[g - 1]) return malformed;
  }
  out.dim = dim;
  out.count = count;
  out.block_counts = std::move(block_counts);
  out.group_block_start.assign(group_starts.begin(), group_starts.end());

  Result<SectionView> ids = image.Section(SectionKind::kStoreIds, unit);
  if (!ids.ok()) return ids.status();
  ByteReader ids_reader(ids.value());
  {
    std::vector<uint32_t> raw_ids;
    if (!ids_reader.ReadU32Array(count, &raw_ids) || !ids_reader.AtEnd()) {
      return Status::Corruption("collection file " + image.path() +
                                ": malformed store ids (unit " +
                                std::to_string(unit) + ")");
    }
    out.ids.assign(raw_ids.begin(), raw_ids.end());
  }

  Result<SectionView> stats = image.Section(SectionKind::kStoreStats, unit);
  if (!stats.ok()) return stats.status();
  ByteReader stats_reader(stats.value());
  PDX_RETURN_IF_ERROR(ReadStats(stats_reader, dim, &out.stats));
  out.block_stats.resize(out.block_counts.size());
  for (DimensionStats& bs : out.block_stats) {
    PDX_RETURN_IF_ERROR(ReadStats(stats_reader, dim, &bs));
  }
  if (!stats_reader.AtEnd()) {
    return Status::Corruption("collection file " + image.path() +
                              ": oversized stats section (unit " +
                              std::to_string(unit) + ")");
  }

  Result<SectionView> arena = image.Section(SectionKind::kStoreArena, unit);
  if (!arena.ok()) return arena.status();
  if (arena.value().size != arena_floats * sizeof(float)) {
    return Status::Corruption("collection file " + image.path() +
                              ": arena size mismatch (unit " +
                              std::to_string(unit) + ")");
  }
  if (reinterpret_cast<uintptr_t>(arena.value().data) % kPdxAlignment != 0) {
    return Status::Internal("collection file " + image.path() +
                            ": arena view not 64-byte aligned");
  }
  out.arena = reinterpret_cast<const float*>(arena.value().data);
  out.arena_floats = arena_floats;
  return out;
}

Result<IvfImage> DecodeIvf(const CollectionImage& image, uint32_t unit) {
  Result<SectionView> buckets = image.Section(SectionKind::kIvfBuckets, unit);
  if (!buckets.ok()) return buckets.status();
  const Status malformed =
      Status::Corruption("collection file " + image.path() +
                         ": malformed IVF buckets (shard " +
                         std::to_string(unit) + ")");

  IvfImage out;
  ByteReader reader(buckets.value());
  uint64_t num_buckets = 0, total = 0;
  if (!reader.ReadU64(&num_buckets) || !reader.ReadU64(&total)) {
    return malformed;
  }
  std::vector<uint64_t> offsets;
  std::vector<uint32_t> members;
  if (num_buckets + 1 < num_buckets ||
      !reader.ReadU64Array(num_buckets + 1, &offsets) ||
      !reader.ReadU32Array(total, &members) || !reader.AtEnd()) {
    return malformed;
  }
  if (offsets.front() != 0 || offsets.back() != total) return malformed;
  out.num_buckets = num_buckets;
  out.buckets.resize(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    if (offsets[b + 1] < offsets[b]) return malformed;
    out.buckets[b].assign(members.begin() + offsets[b],
                          members.begin() + offsets[b + 1]);
  }

  Result<SectionView> rows =
      image.Section(SectionKind::kIvfCentroidRows, unit);
  if (!rows.ok()) return rows.status();
  const uint64_t dim = image.meta().dim;
  if (rows.value().size != num_buckets * dim * sizeof(float)) {
    return Status::Corruption("collection file " + image.path() +
                              ": centroid rows size mismatch (shard " +
                              std::to_string(unit) + ")");
  }
  out.centroid_rows = reinterpret_cast<const float*>(rows.value().data);
  return out;
}

Result<Matrix> DecodeRotation(const CollectionImage& image, uint32_t unit) {
  Result<SectionView> section =
      image.Section(SectionKind::kPrunerRotation, unit);
  if (!section.ok()) return section.status();
  ByteReader reader(section.value());
  uint64_t rows = 0, cols = 0;
  if (!reader.ReadU64(&rows) || !reader.ReadU64(&cols) || rows == 0 ||
      rows != cols || rows > reader.remaining()) {
    return Status::Corruption("collection file " + image.path() +
                              ": malformed rotation matrix");
  }
  Matrix m(rows, cols);
  if (!reader.ReadFloats(rows * cols, m.data()) || !reader.AtEnd()) {
    return Status::Corruption("collection file " + image.path() +
                              ": malformed rotation matrix");
  }
  return m;
}

Result<PcaImage> DecodePca(const CollectionImage& image, uint32_t unit) {
  Result<SectionView> section = image.Section(SectionKind::kPrunerPca, unit);
  if (!section.ok()) return section.status();
  const Status malformed = Status::Corruption(
      "collection file " + image.path() + ": malformed PCA section");
  ByteReader reader(section.value());
  PcaImage out;
  uint64_t dim = 0;
  if (!reader.ReadU64(&dim) || dim == 0 || dim > reader.remaining() ||
      !reader.ReadFloatVector(dim, &out.mean) ||
      !reader.ReadFloatVector(dim, &out.variance)) {
    return malformed;
  }
  uint64_t rows = 0, cols = 0;
  if (!reader.ReadU64(&rows) || !reader.ReadU64(&cols) || rows == 0 ||
      cols != dim || rows > reader.remaining()) {
    return malformed;
  }
  out.components = Matrix(rows, cols);
  if (!reader.ReadFloats(rows * cols, out.components.data()) ||
      !reader.AtEnd()) {
    return malformed;
  }
  return out;
}

Result<QuantImage> DecodeQuant(const CollectionImage& image, uint32_t unit) {
  Result<SectionView> params = image.Section(SectionKind::kQuantParams, unit);
  if (!params.ok()) return params.status();
  const Status malformed = Status::Corruption(
      "collection file " + image.path() + ": malformed quant params (unit " +
      std::to_string(unit) + ")");
  ByteReader reader(params.value());
  QuantImage out;
  uint64_t dim = 0, count = 0;
  if (!reader.ReadU64(&dim) || !reader.ReadU64(&count) || dim == 0 ||
      count == 0 || dim > reader.remaining() ||
      !reader.ReadFloatVector(dim, &out.offsets) ||
      !reader.ReadFloatVector(dim, &out.scales) || !reader.AtEnd()) {
    return malformed;
  }
  out.dim = dim;
  out.count = count;

  Result<SectionView> codes = image.Section(SectionKind::kQuantCodes, unit);
  if (!codes.ok()) return codes.status();
  if (codes.value().size != count * dim) {
    return Status::Corruption("collection file " + image.path() +
                              ": quant codes size disagrees with count x dim");
  }
  out.codes = codes.value().data;
  out.codes_bytes = codes.value().size;

  Result<SectionView> rows = image.Section(SectionKind::kQuantRows, unit);
  if (!rows.ok()) return rows.status();
  if (rows.value().size != count * dim * sizeof(float)) {
    return Status::Corruption("collection file " + image.path() +
                              ": quant rows size disagrees with count x dim");
  }
  out.rows = reinterpret_cast<const float*>(rows.value().data);
  return out;
}

Result<MutableImage> DecodeMutable(const CollectionImage& image) {
  MutableImage out;
  const uint64_t dim = image.meta().dim;

  Result<SectionView> raw = image.Section(SectionKind::kRawRows, 0);
  if (!raw.ok()) return raw.status();
  if (raw.value().size % (dim * sizeof(float)) != 0) {
    return Status::Corruption("collection file " + image.path() +
                              ": raw rows size not a multiple of dim");
  }
  out.raw_rows = reinterpret_cast<const float*>(raw.value().data);
  out.raw_count = raw.value().size / (dim * sizeof(float));
  out.raw_dim = dim;

  Result<SectionView> delta = image.Section(SectionKind::kDeltaRows, 0);
  if (!delta.ok()) return delta.status();
  const Status malformed_delta = Status::Corruption(
      "collection file " + image.path() + ": malformed delta section");
  ByteReader delta_reader(delta.value());
  uint64_t delta_count = 0, delta_dim = 0;
  if (!delta_reader.ReadU64(&delta_count) ||
      !delta_reader.ReadU64(&delta_dim) || delta_dim != dim) {
    return malformed_delta;
  }
  std::vector<uint32_t> slots;
  if (!delta_reader.ReadU32Array(delta_count, &slots) ||
      !delta_reader.ViewFloats(delta_count * dim, &out.delta_rows) ||
      !delta_reader.AtEnd()) {
    return malformed_delta;
  }
  out.delta_count = delta_count;
  out.delta_dim = dim;
  out.delta_slots.assign(slots.begin(), slots.end());

  Result<SectionView> tombs = image.Section(SectionKind::kTombstones, 0);
  if (!tombs.ok()) return tombs.status();
  const Status malformed_tombs = Status::Corruption(
      "collection file " + image.path() + ": malformed tombstone section");
  ByteReader tombs_reader(tombs.value());
  uint64_t slot_count = 0;
  if (!tombs_reader.ReadU64(&slot_count) ||
      !tombs_reader.ReadU64Array(slot_count, &out.slot_ids) ||
      !tombs_reader.ReadU8Array(slot_count, &out.dead) ||
      !tombs_reader.AtEnd()) {
    return malformed_tombs;
  }
  if (slot_count != out.raw_count + out.delta_count) {
    return Status::Corruption("collection file " + image.path() +
                              ": tombstone count disagrees with rows");
  }
  return out;
}

}  // namespace pdx
