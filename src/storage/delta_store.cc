#include "storage/delta_store.h"

#include <cassert>

namespace pdx {

DeltaStore::DeltaStore(size_t dim, size_t block_capacity)
    : dim_(dim),
      block_capacity_(block_capacity == 0 ? kPdxBlockSize : block_capacity),
      rows_(dim) {}

void DeltaStore::Append(const float* row, VectorId slot) {
  assert(dim_ > 0 && "DeltaStore must be constructed with a dimension");
  rows_.Append(row);
  slots_.push_back(slot);
  const size_t n = rows_.count();
  const size_t tail_start = ((n - 1) / block_capacity_) * block_capacity_;
  const size_t tail_count = n - tail_start;
  if (tail_count == 1) {
    // Previous tail (if any) just sealed at block_capacity; open a new one.
    blocks_.emplace_back(dim_, 1);
  } else {
    // PdxBlock's lane count is fixed at construction (the transposed layout
    // leaves no growth room between dimensions), so the partial tail is
    // rebuilt one lane larger. Only the tail — sealed blocks keep their
    // storage untouched.
    blocks_.back() = PdxBlock(dim_, tail_count);
  }
  PdxBlock& tail = blocks_.back();
  for (size_t i = 0; i < tail_count; ++i) {
    tail.FillLane(i, rows_.Vector(tail_start + i), slots_[tail_start + i]);
  }
  ++tail_repacks_;
}

void DeltaStore::Clear() {
  rows_ = VectorSet(dim_);
  slots_.clear();
  blocks_.clear();
}

}  // namespace pdx
