#ifndef PDX_STORAGE_FVECS_IO_H_
#define PDX_STORAGE_FVECS_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/vector_set.h"

namespace pdx {

/// Readers and writers for the INRIA vector exchange formats (Section 8,
/// "Data formats for vectors"):
///
///   .fvecs — records of [int32 dim][dim x float32]
///   .ivecs — records of [int32 dim][dim x int32]   (ground-truth ids)
///   .bvecs — records of [int32 dim][dim x uint8]
///
/// All records in one file must share the same dimensionality; readers
/// validate this and fail with Status::Corruption on malformed input:
/// a record header or payload cut short by truncation, a dimension that
/// changes mid-file, an implausible (<= 0 or > 2^24) dimension, or a
/// file with zero records (an empty file has no dimensionality, so no
/// downstream consumer can do anything with it). Unreadable files are
/// Status::IoError.

/// Reads a whole .fvecs file into a horizontal VectorSet.
Result<VectorSet> ReadFvecs(const std::string& path);

/// Writes a collection as .fvecs.
Status WriteFvecs(const std::string& path, const VectorSet& vectors);

/// Reads a .ivecs file (e.g., ground-truth neighbor lists).
Result<std::vector<std::vector<int32_t>>> ReadIvecs(const std::string& path);

/// Writes integer lists as .ivecs. All rows must have equal length.
Status WriteIvecs(const std::string& path,
                  const std::vector<std::vector<int32_t>>& rows);

/// Reads a .bvecs file, widening bytes to float32.
Result<VectorSet> ReadBvecs(const std::string& path);

/// Writes a collection as .bvecs; values are clamped to [0, 255] and
/// rounded.
Status WriteBvecs(const std::string& path, const VectorSet& vectors);

}  // namespace pdx

#endif  // PDX_STORAGE_FVECS_IO_H_
