#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pdx {

MmapFile::~MmapFile() { Unmap(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MmapFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("mmap open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("mmap fstat " + path + ": " + std::strerror(err));
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::IoError("mmap " + path + ": empty file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  // MAP_SHARED (not PRIVATE): replica processes mapping the same file keep
  // sharing one physical copy of the pages even after one of them faults
  // them in.
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is not
  // needed past this point either way.
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::IoError("mmap " + path + ": " + std::strerror(errno));
  }
  MmapFile file;
  file.data_ = static_cast<uint8_t*>(base);
  file.size_ = size;
  return file;
}

}  // namespace pdx
