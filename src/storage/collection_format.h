#ifndef PDX_STORAGE_COLLECTION_FORMAT_H_
#define PDX_STORAGE_COLLECTION_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "common/types.h"
#include "linalg/matrix.h"
#include "storage/block_stats.h"
#include "storage/mmap_file.h"
#include "storage/pdx_store.h"

namespace pdx {

/// The versioned on-disk collection format ("PDXC"):
///
///   [0]  magic "PDXC"
///   [4]  u32 format version (kCollectionFormatVersion)
///   [8]  u32 section count
///   [12] u32 reserved (0)
///   [16] u64 file size
///   [24] u64 header checksum (FNV-1a 64 over bytes [0, 24) plus the
///        whole section table)
///   [32] section table: per section
///        {u32 kind, u32 unit, u64 offset, u64 size, u64 payload checksum}
///   ...  payload sections
///
/// Sections carrying raw float payload meant to be served directly from a
/// memory mapping (kStoreArena, kRawRows) start on 64-byte-aligned file
/// offsets, so a page-aligned mmap of the file yields kPdxAlignment-aligned
/// arena pointers — PDX blocks become zero-copy views over the mapping.
/// Everything else (ids, stats, bucket lists, transform matrices) is small
/// relative to the payload and is decoded into owned structures at load.
///
/// The `unit` field namespaces repeated kinds: shard s's main PDX store
/// uses unit 2*s, its IVF-centroid store unit 2*s + 1; per-shard sections
/// (buckets, pruner transforms) use unit s. Collection-wide sections use
/// unit 0.
inline constexpr char kCollectionMagic[4] = {'P', 'D', 'X', 'C'};
inline constexpr uint32_t kCollectionFormatVersion = 1;

enum class SectionKind : uint32_t {
  kCollectionMeta = 1,   ///< One SavedMeta (unit 0).
  kStoreMeta = 2,        ///< Shape of one PDX store (per store unit).
  kStoreIds = 3,         ///< Lane -> global id, block order (per store unit).
  kStoreStats = 4,       ///< Collection + per-block DimensionStats.
  kStoreArena = 5,       ///< The dimension-major float arena (mmap-able).
  kIvfBuckets = 6,       ///< Bucket membership lists (per shard).
  kIvfCentroidRows = 7,  ///< Horizontal centroids (per shard).
  kPrunerRotation = 8,   ///< ADSampling rotation matrix (per shard).
  kPrunerPca = 9,        ///< BSA PCA basis (per shard).
  kRawRows = 10,         ///< Mutable base rows, horizontal (mmap-able).
  kDeltaRows = 11,       ///< Mutable delta rows + slots.
  kTombstones = 12,      ///< Mutable slot ids + tombstone bitmap.
  kQuantParams = 13,     ///< u8 tier per-dimension offsets + scales.
  kQuantCodes = 14,      ///< u8 tier code arena, block order (mmap-able).
  kQuantRows = 15,       ///< u8 tier rerank rows, horizontal (mmap-able).
};

/// Fixed-layout collection metadata — the serialized form of the
/// SearcherConfig/ShardingOptions/MutationConfig triple a searcher was
/// built with (already *resolved*: block_capacity and bond_order carry the
/// values ResolveConfig derived, so a later change of defaults cannot
/// silently re-shape a loaded collection). Written to disk verbatim; the
/// golden-file test pins this layout.
struct SavedMeta {
  uint32_t layout = 0;      ///< SearcherLayout
  uint32_t pruner = 0;      ///< PrunerKind
  uint32_t metric = 0;      ///< Metric
  uint32_t assignment = 0;  ///< ShardAssignment
  uint64_t num_shards = 1;
  uint64_t dim = 0;
  uint64_t count = 0;  ///< Vectors in the (base) collection, all shards.
  uint64_t k = 0;
  uint64_t nprobe = 0;
  uint64_t block_capacity = 0;
  uint32_t bond_order = 0;  ///< DimensionOrder (resolved)
  uint32_t bond_zone_size = 0;
  float ads_epsilon0 = 0.0f;
  /// QuantizationKind. Occupies a former reserved field: old files read 0
  /// = kNone, so the format version is unchanged.
  uint32_t quantization = 0;
  uint64_t ads_seed = 0;
  float bsa_multiplier = 0.0f;
  /// u8 tier candidate over-fetch (former reserved field; see above).
  uint32_t rerank_factor = 0;
  uint64_t bsa_max_fit_samples = 0;
  uint64_t ivf_num_buckets = 0;  ///< IvfOptions as configured (rebuilds).
  int64_t ivf_max_iterations = 0;
  uint64_t ivf_seed = 0;
  float search_selection_fraction = 0.0f;
  uint32_t search_adaptive_steps = 0;
  uint64_t search_initial_step = 0;
  uint64_t search_fixed_step = 0;
  uint32_t mutable_snapshot = 0;  ///< 1 = carries raw/delta/tombstone state.
  uint32_t delta_block_capacity = 0;
  uint64_t compact_threshold = 0;
  uint64_t next_auto_id = 0;
  uint64_t compactions = 0;
};
static_assert(sizeof(SavedMeta) == 184, "SavedMeta layout is pinned on disk");

/// One PDX store, described for serialization. The arena pointer borrows
/// from the live store: a SavedCollection is valid only while the searcher
/// it was exported from is alive and unchanged.
struct SavedStore {
  uint64_t dim = 0;
  uint64_t count = 0;
  std::vector<uint32_t> block_counts;      ///< Lanes per block, block order.
  std::vector<uint64_t> group_block_start; ///< num_groups + 1 boundaries.
  std::vector<uint32_t> ids;               ///< Lane ids, block order.
  std::vector<float> stats;  ///< (1 + num_blocks) x 4 x dim floats.
  const float* arena = nullptr;
  uint64_t arena_floats = 0;
};

/// Flattens `store` into its serializable description (arena borrowed).
SavedStore ExportStore(const PdxStore& store);

/// One shard's worth of searcher state.
struct SavedShard {
  SavedStore store;
  bool has_ivf = false;
  SavedStore centroids;              ///< Centroid PDX store (has_ivf).
  std::vector<float> centroid_rows;  ///< nb x dim horizontal (has_ivf).
  std::vector<uint64_t> bucket_offsets;  ///< nb + 1 (has_ivf).
  std::vector<uint32_t> bucket_ids;      ///< Flat members (has_ivf).
  Matrix ads_rotation;               ///< rows() > 0 for ADSampling.
  std::vector<float> pca_mean;       ///< BSA only.
  std::vector<float> pca_variance;   ///< BSA only.
  Matrix pca_components;             ///< rows() > 0 for BSA.
  /// u8 quantized tier (has_quant): the shard persists kQuantParams /
  /// kQuantCodes / kQuantRows *instead of* a float PDX store (`store` stays
  /// empty). Codes and rows borrow from the exporting searcher.
  bool has_quant = false;
  std::vector<float> quant_offsets;  ///< Per-dimension offsets (dim).
  std::vector<float> quant_scales;   ///< Per-dimension scales (dim).
  const uint8_t* quant_codes = nullptr;  ///< Block-order code arena.
  uint64_t quant_codes_bytes = 0;        ///< count x dim.
  const float* quant_rows = nullptr;     ///< count x dim, global-id order.
};

/// Everything WriteCollectionFile needs: metadata, per-shard stores and
/// transforms, and (for mutable snapshots) the delta/tombstone overlay.
/// Pointer members borrow from the exporting searcher.
struct SavedCollection {
  SavedMeta meta;
  std::vector<SavedShard> shards;
  const float* raw_rows = nullptr;  ///< base_count x dim (mutable only).
  uint64_t raw_row_count = 0;
  const float* delta_rows = nullptr;  ///< delta_count x dim (mutable only).
  uint64_t delta_row_count = 0;
  std::vector<uint32_t> delta_slots;
  std::vector<uint64_t> slot_ids;
  std::vector<uint8_t> dead;
};

/// Serializes `saved` to `path` (atomically enough for our purposes: the
/// file is written in one pass; a crash mid-write fails checksum
/// validation at load rather than serving garbage).
Status WriteCollectionFile(const std::string& path,
                           const SavedCollection& saved);

/// A bounds-checked window into one section's payload.
struct SectionView {
  const uint8_t* data = nullptr;
  uint64_t size = 0;
};

/// A validated, loaded collection file: either a live memory mapping
/// (source() == "mmap" — the arena is served straight from the page
/// cache) or a heap copy fallback (source() == "loaded"). Load verifies
/// magic, version, bounds, and every section checksum up front, so a
/// truncated or bit-flipped file fails with a clean Status instead of
/// crashing later under a searcher.
///
/// Searchers constructed over an image keep it alive via shared_ptr
/// (Searcher::PinImage); the image must outlive every view into it.
class CollectionImage {
 public:
  /// Loads and validates `path`. `allow_mmap` = false forces the heap
  /// fallback (tests exercise both sources; callers on weird filesystems
  /// may too).
  static Result<std::shared_ptr<CollectionImage>> Load(
      const std::string& path, bool allow_mmap = true);

  const SavedMeta& meta() const { return meta_; }
  /// "mmap" when the file is served from a live mapping, else "loaded".
  const char* source() const { return mmap_.mapped() ? "mmap" : "loaded"; }
  uint64_t mapped_bytes() const { return mmap_.mapped() ? mmap_.size() : 0; }
  uint64_t file_bytes() const { return size_; }
  const std::string& path() const { return path_; }

  bool HasSection(SectionKind kind, uint32_t unit) const;
  /// The section's payload; Corruption when absent (a file that validated
  /// but lacks a section the meta implies is malformed).
  Result<SectionView> Section(SectionKind kind, uint32_t unit) const;

 private:
  CollectionImage() = default;

  MmapFile mmap_;
  AlignedBuffer heap_;  ///< Heap fallback backing (64-byte aligned).
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
  SavedMeta meta_;
  struct Entry {
    uint32_t kind = 0;
    uint32_t unit = 0;
    uint64_t offset = 0;
    uint64_t size = 0;
  };
  std::vector<Entry> sections_;
};

/// One PDX store decoded from an image: small structures owned, the arena
/// a borrowed 64-byte-aligned pointer into the image.
struct StoreImage {
  size_t dim = 0;
  size_t count = 0;
  std::vector<uint32_t> block_counts;
  std::vector<size_t> group_block_start;
  std::vector<VectorId> ids;
  DimensionStats stats;
  std::vector<DimensionStats> block_stats;
  const float* arena = nullptr;
  size_t arena_floats = 0;
};

/// Decodes store unit `unit` (meta + ids + stats + arena view).
Result<StoreImage> DecodeStore(const CollectionImage& image, uint32_t unit);

/// IVF structures of shard `unit`.
struct IvfImage {
  std::vector<std::vector<VectorId>> buckets;
  const float* centroid_rows = nullptr;  ///< nb x dim floats.
  size_t num_buckets = 0;
};
Result<IvfImage> DecodeIvf(const CollectionImage& image, uint32_t unit);

/// ADSampling rotation of shard `unit`.
Result<Matrix> DecodeRotation(const CollectionImage& image, uint32_t unit);

/// BSA PCA basis of shard `unit`.
struct PcaImage {
  std::vector<float> mean;
  std::vector<float> variance;
  Matrix components;
};
Result<PcaImage> DecodePca(const CollectionImage& image, uint32_t unit);

/// u8 quantized tier of shard `unit`: parameters owned, codes and rerank
/// rows borrowed 64-byte-aligned views into the image.
struct QuantImage {
  size_t dim = 0;
  size_t count = 0;
  std::vector<float> offsets;
  std::vector<float> scales;
  const uint8_t* codes = nullptr;
  uint64_t codes_bytes = 0;
  const float* rows = nullptr;  ///< count x dim, global-id order.
};
Result<QuantImage> DecodeQuant(const CollectionImage& image, uint32_t unit);

/// Mutable-snapshot overlay (raw base rows, delta, tombstones).
struct MutableImage {
  const float* raw_rows = nullptr;
  size_t raw_count = 0;
  size_t raw_dim = 0;
  const float* delta_rows = nullptr;
  size_t delta_count = 0;
  size_t delta_dim = 0;
  std::vector<VectorId> delta_slots;
  std::vector<uint64_t> slot_ids;
  std::vector<uint8_t> dead;
};
Result<MutableImage> DecodeMutable(const CollectionImage& image);

/// FNV-1a 64-bit — the format's checksum. Exposed for tests that corrupt
/// files surgically.
uint64_t Fnv1a64(const uint8_t* data, size_t size, uint64_t seed = 0);

}  // namespace pdx

#endif  // PDX_STORAGE_COLLECTION_FORMAT_H_
