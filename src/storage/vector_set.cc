#include "storage/vector_set.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace pdx {

VectorSet::VectorSet(size_t dim, size_t capacity)
    : dim_(dim), count_(0), capacity_(capacity), data_(dim * capacity) {}

VectorSet VectorSet::Clone() const {
  VectorSet copy(dim_, count_);
  copy.count_ = count_;
  if (count_ > 0) {
    std::memcpy(copy.data_.data(), data_.data(),
                count_ * dim_ * sizeof(float));
  }
  return copy;
}

VectorSet VectorSet::FromRowMajor(const float* data, size_t count,
                                  size_t dim) {
  VectorSet set(dim, count);
  set.AppendBatch(data, count);
  return set;
}

VectorId VectorSet::Append(const float* values) {
  EnsureCapacity(count_ + 1);
  std::memcpy(data_.data() + count_ * dim_, values, dim_ * sizeof(float));
  return static_cast<VectorId>(count_++);
}

void VectorSet::AppendBatch(const float* values, size_t count) {
  if (count == 0) return;
  EnsureCapacity(count_ + count);
  std::memcpy(data_.data() + count_ * dim_, values,
              count * dim_ * sizeof(float));
  count_ += count;
}

void VectorSet::Update(VectorId id, const float* values) {
  assert(id < count_);
  std::memcpy(data_.data() + id * dim_, values, dim_ * sizeof(float));
}

VectorSet VectorSet::Select(const std::vector<VectorId>& ids) const {
  VectorSet out(dim_, ids.size());
  for (VectorId id : ids) {
    assert(id < count_);
    out.Append(Vector(id));
  }
  return out;
}

std::vector<float> VectorSet::DimensionMeans() const {
  std::vector<double> acc(dim_, 0.0);
  for (size_t i = 0; i < count_; ++i) {
    const float* row = Vector(static_cast<VectorId>(i));
    for (size_t d = 0; d < dim_; ++d) acc[d] += row[d];
  }
  std::vector<float> means(dim_, 0.0f);
  if (count_ > 0) {
    for (size_t d = 0; d < dim_; ++d) {
      means[d] = static_cast<float>(acc[d] / static_cast<double>(count_));
    }
  }
  return means;
}

void VectorSet::EnsureCapacity(size_t vectors) {
  if (vectors <= capacity_) return;
  size_t new_capacity = std::max<size_t>(capacity_ * 2, 16);
  new_capacity = std::max(new_capacity, vectors);
  AlignedBuffer grown(new_capacity * dim_);
  if (count_ > 0) {
    std::memcpy(grown.data(), data_.data(), count_ * dim_ * sizeof(float));
  }
  data_ = std::move(grown);
  capacity_ = new_capacity;
}

}  // namespace pdx
