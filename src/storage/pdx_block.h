#ifndef PDX_STORAGE_PDX_BLOCK_H_
#define PDX_STORAGE_PDX_BLOCK_H_

#include <cstddef>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/types.h"

namespace pdx {

/// One PDX block: up to `capacity` vectors stored dimension-major.
///
/// Within a block the values of dimension d for all vectors are contiguous:
/// value(d, i) lives at data()[d * count + i]. This is the core layout idea
/// of the paper (Figure 1) — a vertical layout *inside* a horizontal
/// partition, analogous to a Parquet row-group with columnar pages.
///
/// Small blocks (kPdxBlockSize = 64) give tight register-resident loops for
/// IVF buckets; large blocks (<= ~10K vectors, Section 6.5) trade the tight
/// loop for longer sequential runs per dimension during exact search.
/// Blocks either own their storage (standalone construction, tests) or
/// view a slice of a PdxStore's contiguous arena — consecutive blocks of a
/// store are adjacent in memory, so a block-by-block scan is one long
/// sequential stream (essential for hardware prefetching; see Section 5).
class PdxBlock {
 public:
  PdxBlock() = default;
  /// Creates a self-owning block for exactly `count` vectors of `dim`
  /// dimensions, zero-initialized.
  PdxBlock(size_t dim, size_t count);
  /// Creates a view over `external` (dim*count floats, dimension-major),
  /// owned by the caller (PdxStore's arena).
  PdxBlock(size_t dim, size_t count, float* external);

  PdxBlock(PdxBlock&&) = default;
  PdxBlock& operator=(PdxBlock&&) = default;
  PdxBlock(const PdxBlock&) = delete;
  PdxBlock& operator=(const PdxBlock&) = delete;

  size_t dim() const { return dim_; }
  size_t count() const { return count_; }

  /// Start of dimension d's value run (count() floats).
  const float* Dimension(size_t d) const { return data_ + d * count_; }
  float* MutableDimension(size_t d) { return data_ + d * count_; }

  float At(size_t d, size_t i) const { return data_[d * count_ + i]; }
  void Set(size_t d, size_t i, float v) { data_[d * count_ + i] = v; }

  const float* data() const { return data_; }

  /// Global id of the block-local vector i.
  VectorId id(size_t i) const { return ids_[i]; }
  const std::vector<VectorId>& ids() const { return ids_; }

  /// Writes vector `row` (horizontal, dim() floats) into lane i and records
  /// its global id — i.e., transposes one vector into the block.
  void FillLane(size_t i, const float* row, VectorId id);

  /// Reconstructs lane i into `out[0..dim)` (transpose back).
  void ExtractLane(size_t i, float* out) const;

  /// Installs the lane -> global id table wholesale. Used when
  /// reconstructing a view block over already-packed data (a loaded
  /// collection image), where FillLane's transpose must not run — the
  /// external region is read-only and already holds the packed values.
  void AssignIds(std::vector<VectorId> ids) {
    ids_ = std::move(ids);
  }

 private:
  size_t dim_ = 0;
  size_t count_ = 0;
  AlignedBuffer owned_;   // Empty when viewing external storage.
  float* data_ = nullptr;
  std::vector<VectorId> ids_;
};

}  // namespace pdx

#endif  // PDX_STORAGE_PDX_BLOCK_H_
