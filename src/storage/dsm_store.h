#ifndef PDX_STORAGE_DSM_STORE_H_
#define PDX_STORAGE_DSM_STORE_H_

#include <cstddef>

#include "common/aligned_buffer.h"
#include "common/types.h"
#include "storage/vector_set.h"

namespace pdx {

/// Fully decomposed (DSM) layout: each dimension of the *entire* collection
/// is one contiguous column — the degenerate PDX case of a single block
/// spanning all vectors (Section 7, "PDX vs DSM").
///
/// Maximizes sequential access per dimension but forces the running
/// distances array (count() floats) through load/store on every dimension,
/// which is why the paper finds it ~1.5x slower than PDX linear scans in
/// memory.
class DsmStore {
 public:
  DsmStore() = default;

  DsmStore(DsmStore&&) = default;
  DsmStore& operator=(DsmStore&&) = default;
  DsmStore(const DsmStore&) = delete;
  DsmStore& operator=(const DsmStore&) = delete;

  /// Transposes a horizontal collection into columns.
  static DsmStore FromVectorSet(const VectorSet& vectors);

  size_t dim() const { return dim_; }
  size_t count() const { return count_; }

  /// Column d: count() contiguous floats.
  const float* Dimension(size_t d) const { return data_.data() + d * count_; }

 private:
  size_t dim_ = 0;
  size_t count_ = 0;
  AlignedBuffer data_;
};

}  // namespace pdx

#endif  // PDX_STORAGE_DSM_STORE_H_
