#include "storage/fvecs_io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

namespace pdx {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

FileHandle OpenForRead(const std::string& path, Status& status) {
  FileHandle f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) status = Status::IoError("cannot open " + path);
  return f;
}

FileHandle OpenForWrite(const std::string& path, Status& status) {
  FileHandle f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    status = Status::IoError("cannot open " + path + " for writing");
  }
  return f;
}

// Reads one record header; returns false on clean EOF or error (status
// tells them apart). Read byte-wise: fread with a 4-byte element size
// reports a 1-3 byte tail as "0 elements" with EOF set, indistinguishable
// from a clean end — and a file cut mid-header must be Corruption, not a
// silently shorter collection.
bool ReadDimHeader(std::FILE* f, int32_t& dim, Status& status,
                   const std::string& path) {
  const size_t got = std::fread(&dim, 1, sizeof(int32_t), f);
  if (got == 0 && std::feof(f)) return false;
  if (got < sizeof(int32_t)) {
    status = std::feof(f)
                 ? Status::Corruption("truncated record header in " + path)
                 : Status::IoError("read failure in " + path);
    return false;
  }
  if (dim <= 0 || dim > (1 << 24)) {
    status = Status::Corruption("implausible dimensionality " +
                                std::to_string(dim) + " in " + path);
    return false;
  }
  return true;
}

}  // namespace

Result<VectorSet> ReadFvecs(const std::string& path) {
  Status status;
  FileHandle f = OpenForRead(path, status);
  if (!status.ok()) return status;

  VectorSet vectors;
  std::vector<float> row;
  int32_t dim = 0;
  while (ReadDimHeader(f.get(), dim, status, path)) {
    if (vectors.dim() == 0 && vectors.count() == 0) {
      vectors = VectorSet(static_cast<size_t>(dim));
    } else if (static_cast<size_t>(dim) != vectors.dim()) {
      return Status::Corruption("inconsistent dimensionality in " + path);
    }
    row.resize(static_cast<size_t>(dim));
    if (std::fread(row.data(), sizeof(float), row.size(), f.get()) !=
        row.size()) {
      return Status::Corruption("truncated record in " + path);
    }
    vectors.Append(row.data());
  }
  if (!status.ok()) return status;
  if (vectors.count() == 0) {
    // An empty file has no dimensionality, so every downstream consumer
    // (builders, benchmarks) would fail later with a worse message.
    return Status::Corruption("no vectors in " + path);
  }
  return vectors;
}

Status WriteFvecs(const std::string& path, const VectorSet& vectors) {
  Status status;
  FileHandle f = OpenForWrite(path, status);
  if (!status.ok()) return status;

  const int32_t dim = static_cast<int32_t>(vectors.dim());
  for (size_t i = 0; i < vectors.count(); ++i) {
    if (std::fwrite(&dim, sizeof(int32_t), 1, f.get()) != 1 ||
        std::fwrite(vectors.Vector(static_cast<VectorId>(i)), sizeof(float),
                    vectors.dim(), f.get()) != vectors.dim()) {
      return Status::IoError("write failure in " + path);
    }
  }
  return Status::OK();
}

Result<std::vector<std::vector<int32_t>>> ReadIvecs(const std::string& path) {
  Status status;
  FileHandle f = OpenForRead(path, status);
  if (!status.ok()) return status;

  std::vector<std::vector<int32_t>> rows;
  int32_t dim = 0;
  while (ReadDimHeader(f.get(), dim, status, path)) {
    std::vector<int32_t> row(static_cast<size_t>(dim));
    if (std::fread(row.data(), sizeof(int32_t), row.size(), f.get()) !=
        row.size()) {
      return Status::Corruption("truncated record in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (!status.ok()) return status;
  if (rows.empty()) return Status::Corruption("no records in " + path);
  return rows;
}

Status WriteIvecs(const std::string& path,
                  const std::vector<std::vector<int32_t>>& rows) {
  Status status;
  FileHandle f = OpenForWrite(path, status);
  if (!status.ok()) return status;

  for (const std::vector<int32_t>& row : rows) {
    if (!rows.empty() && row.size() != rows.front().size()) {
      return Status::InvalidArgument("ragged rows in ivecs write");
    }
    const int32_t dim = static_cast<int32_t>(row.size());
    if (std::fwrite(&dim, sizeof(int32_t), 1, f.get()) != 1 ||
        std::fwrite(row.data(), sizeof(int32_t), row.size(), f.get()) !=
            row.size()) {
      return Status::IoError("write failure in " + path);
    }
  }
  return Status::OK();
}

Result<VectorSet> ReadBvecs(const std::string& path) {
  Status status;
  FileHandle f = OpenForRead(path, status);
  if (!status.ok()) return status;

  VectorSet vectors;
  std::vector<uint8_t> raw;
  std::vector<float> row;
  int32_t dim = 0;
  while (ReadDimHeader(f.get(), dim, status, path)) {
    if (vectors.dim() == 0 && vectors.count() == 0) {
      vectors = VectorSet(static_cast<size_t>(dim));
    } else if (static_cast<size_t>(dim) != vectors.dim()) {
      return Status::Corruption("inconsistent dimensionality in " + path);
    }
    raw.resize(static_cast<size_t>(dim));
    if (std::fread(raw.data(), sizeof(uint8_t), raw.size(), f.get()) !=
        raw.size()) {
      return Status::Corruption("truncated record in " + path);
    }
    row.assign(raw.begin(), raw.end());
    vectors.Append(row.data());
  }
  if (!status.ok()) return status;
  if (vectors.count() == 0) return Status::Corruption("no vectors in " + path);
  return vectors;
}

Status WriteBvecs(const std::string& path, const VectorSet& vectors) {
  Status status;
  FileHandle f = OpenForWrite(path, status);
  if (!status.ok()) return status;

  const int32_t dim = static_cast<int32_t>(vectors.dim());
  std::vector<uint8_t> raw(vectors.dim());
  for (size_t i = 0; i < vectors.count(); ++i) {
    const float* row = vectors.Vector(static_cast<VectorId>(i));
    for (size_t d = 0; d < vectors.dim(); ++d) {
      raw[d] = static_cast<uint8_t>(
          std::clamp(std::lround(row[d]), 0L, 255L));
    }
    if (std::fwrite(&dim, sizeof(int32_t), 1, f.get()) != 1 ||
        std::fwrite(raw.data(), sizeof(uint8_t), raw.size(), f.get()) !=
            raw.size()) {
      return Status::IoError("write failure in " + path);
    }
  }
  return Status::OK();
}

}  // namespace pdx
