// Exact-search scenario: near-duplicate detection over image-feature
// vectors (GIST-like: 960 dims, skewed marginals).
//
// A deduplication pipeline cannot tolerate missed neighbors, so it needs
// *exact* k-NN — the setting of the paper's Figure 9. This example runs
// the same query workload through every exact searcher in the library and
// reports per-query latency, demonstrating that PDX-BOND returns identical
// results while touching a fraction of the data.

#include <cstdio>
#include <vector>

#include "benchlib/datagen.h"
#include "common/timer.h"
#include "core/pdx.h"

namespace {

template <typename SearchFn>
double MeasureMillisPerQuery(const pdx::VectorSet& queries, SearchFn&& fn) {
  pdx::Timer timer;
  for (size_t q = 0; q < queries.count(); ++q) fn(queries.Vector(q));
  return timer.ElapsedMillis() / static_cast<double>(queries.count());
}

}  // namespace

int main() {
  pdx::SyntheticSpec spec;
  spec.name = "dedup";
  spec.dim = 960;
  spec.count = 8000;
  spec.num_queries = 20;
  spec.distribution = pdx::ValueDistribution::kSkewed;
  pdx::Dataset dataset = pdx::GenerateDataset(spec);
  const size_t k = 10;

  // Competing exact searchers over the same collection. PDX-BOND goes
  // through the runtime facade (flat layout is its default).
  pdx::PdxStore pdx_store = pdx::PdxStore::FromVectorSet(dataset.data);
  pdx::DsmStore dsm_store = pdx::DsmStore::FromVectorSet(dataset.data);
  pdx::SearcherConfig bond_config;
  bond_config.pruner = pdx::PrunerKind::kBond;
  bond_config.k = k;
  bond_config.block_capacity = 1024;  // ~8 partitions for 8K vectors.
  auto bond = pdx::MakeSearcher(dataset.data, bond_config).value();

  std::vector<std::vector<pdx::Neighbor>> reference;
  const double nary_ms = MeasureMillisPerQuery(
      dataset.queries, [&](const float* q) {
        reference.push_back(
            pdx::FlatSearchNary(dataset.data, q, k, pdx::Metric::kL2));
      });
  const double scalar_ms = MeasureMillisPerQuery(
      dataset.queries, [&](const float* q) {
        pdx::FlatSearchScalar(dataset.data, q, k, pdx::Metric::kL2);
      });
  const double pdx_ms = MeasureMillisPerQuery(
      dataset.queries, [&](const float* q) {
        pdx::FlatSearchPdx(pdx_store, q, k, pdx::Metric::kL2);
      });
  const double dsm_ms = MeasureMillisPerQuery(
      dataset.queries, [&](const float* q) {
        pdx::FlatSearchDsm(dsm_store, q, k, pdx::Metric::kL2);
      });

  // PDX-BOND, with a correctness check against the SIMD reference.
  size_t mismatches = 0;
  size_t query_index = 0;
  const double bond_ms = MeasureMillisPerQuery(
      dataset.queries, [&](const float* q) {
        const auto result = bond->Search(q);
        const auto& expected = reference[query_index++];
        for (size_t i = 0; i < k; ++i) {
          if (result[i].id != expected[i].id) ++mismatches;
        }
      });

  std::printf("exact 10-NN over %zu x %zu (ms/query):\n",
              dataset.data.count(), dataset.dim());
  std::printf("  scalar (sklearn-like)  %8.3f\n", scalar_ms);
  std::printf("  N-ary SIMD (FAISS-like)%8.3f\n", nary_ms);
  std::printf("  DSM linear scan        %8.3f\n", dsm_ms);
  std::printf("  PDX linear scan        %8.3f\n", pdx_ms);
  std::printf("  PDX-BOND (pruned)      %8.3f\n", bond_ms);
  std::printf("PDX-BOND result mismatches vs reference: %zu (must be 0)\n",
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
