// Serving demo: host two named collections behind one async SearchService
// and query them with futures, callbacks, deadlines, and backpressure.
//
//   $ ./serve_demo
//
// The service owns ONE thread pool shared by every collection; client
// threads submit and get a std::future per query (or a callback), while
// replicated dispatcher threads each micro-batch queued queries for the
// same collection into one knob-explicit SearchBatchWith call on their own
// slot band — so batches run concurrently, even against one hot
// collection. Results are identical to direct sequential Search.

#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "benchlib/datagen.h"
#include "core/pdx.h"
#include "serve/search_service.h"

int main() {
  using namespace std::chrono_literals;

  // 1. Two toy collections with different shapes and search configs.
  pdx::SyntheticSpec doc_spec;
  doc_spec.name = "docs";
  doc_spec.dim = 96;
  doc_spec.count = 20000;
  doc_spec.num_queries = 8;
  pdx::Dataset docs = pdx::GenerateDataset(doc_spec);

  pdx::SyntheticSpec img_spec;
  img_spec.name = "images";
  img_spec.dim = 128;
  img_spec.count = 30000;
  img_spec.num_queries = 8;
  img_spec.distribution = pdx::ValueDistribution::kSkewed;
  pdx::Dataset images = pdx::GenerateDataset(img_spec);

  // 2. One service, one shared pool. "docs" serves exact flat PDX-BOND,
  //    sharded across two searchers so one hot collection can use the
  //    whole pool; "images" serves approximate IVF + ADSampling.
  pdx::ServiceConfig service_config;
  service_config.threads = 4;
  service_config.max_pending = 256;
  // Two replicated dispatchers: batches for "docs" and "images" (or two
  // batches for one hot collection) dispatch concurrently, each on its own
  // slot band of the shared pool's engines.
  service_config.dispatchers = 2;
  pdx::SearchService service(service_config);

  pdx::SearcherConfig docs_config;  // Defaults: flat PDX-BOND, k=10.
  docs_config.k = 5;
  pdx::ShardingOptions docs_sharding;
  docs_sharding.num_shards = 2;
  pdx::SearcherConfig images_config;
  images_config.layout = pdx::SearcherLayout::kIvf;
  images_config.pruner = pdx::PrunerKind::kAdsampling;
  images_config.k = 5;
  images_config.nprobe = 16;

  for (auto status : {service.AddCollection("docs", docs.data, docs_config,
                                            docs_sharding),
                      service.AddCollection("images", images.data,
                                            images_config)}) {
    if (!status.ok()) {
      std::printf("AddCollection failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf(
      "serving %zu collections on a %zu-thread shared pool, "
      "%zu dispatchers\n",
      service.CollectionNames().size(), service.pool_threads(),
      service.options().dispatchers);

  // 3. Futures: fire every query at both collections, then gather. The
  //    submitting thread never runs a search itself.
  std::vector<pdx::QueryTicket> tickets;
  for (size_t q = 0; q < docs.queries.count(); ++q) {
    tickets.push_back(service.Submit("docs", docs.queries.Vector(q)));
  }
  for (size_t q = 0; q < images.queries.count(); ++q) {
    tickets.push_back(service.Submit("images", images.queries.Vector(q)));
  }
  for (pdx::QueryTicket& ticket : tickets) {
    pdx::QueryResult r = ticket.result.get();
    std::printf("  [%s] query %llu: %s, %zu neighbors, queue %.2fms, "
                "total %.2fms\n",
                r.collection.c_str(), static_cast<unsigned long long>(r.id),
                r.status.ToString().c_str(), r.neighbors.size(), r.queue_ms,
                r.total_ms);
  }

  // 4. Callback flavor plus a per-query override (k=3) and a deadline.
  pdx::QueryOptions options;
  options.k = 3;
  options.timeout = 50ms;
  std::promise<void> callback_done;
  service.Submit("docs", docs.queries.Vector(0), options,
                 [&callback_done](pdx::QueryResult r) {
                   std::printf("  callback: %s with %zu neighbors\n",
                               r.status.ToString().c_str(),
                               r.neighbors.size());
                   callback_done.set_value();
                 });
  callback_done.get_future().wait();

  // 5. Tracing: a query submitted with trace=true carries a QueryTrace —
  //    the per-stage breakdown plus the engine's search-work counters
  //    (what GET /metrics aggregates and "trace": true returns on the
  //    wire). Untraced queries pay nothing for this.
  pdx::QueryOptions traced;
  traced.trace = true;
  traced.request_id = "demo-trace-1";
  pdx::QueryResult traced_result =
      service.Submit("images", images.queries.Vector(1), traced).result.get();
  if (traced_result.trace != nullptr) {
    const pdx::QueryTrace& t = *traced_result.trace;
    std::printf(
        "  trace %s: queue %.3fms dispatch %.3fms search %.3fms "
        "deliver %.3fms total %.3fms\n",
        t.request_id.c_str(), t.queue_ms, t.stage_ms, t.search_ms,
        t.deliver_ms, t.total_ms);
    std::printf(
        "    work: %llu blocks, %llu vectors pruned, %llu values scanned, "
        "pruning power %.1f%%\n",
        static_cast<unsigned long long>(t.counters.blocks_visited),
        static_cast<unsigned long long>(t.counters.vectors_pruned),
        static_cast<unsigned long long>(t.counters.values_scanned),
        100.0 * t.counters.pruning_power());
  }

  // 6. Stats snapshot: per-collection QPS, latency percentiles, per-shard
  //    fan-out counts for sharded collections, and how the replicated
  //    dispatchers split the dispatch work.
  const pdx::ServiceStats stats = service.Stats();
  std::printf("  simd tier: %s\n", stats.isa.c_str());
  for (size_t d = 0; d < stats.dispatchers.size(); ++d) {
    std::printf("  dispatcher %zu: %llu batches, busy %.1f%%\n", d,
                static_cast<unsigned long long>(stats.dispatchers[d].dispatches),
                100.0 * stats.dispatchers[d].busy_fraction);
  }
  for (const auto& [name, cs] : stats.collections) {
    std::printf("  %s: admitted=%zu completed=%zu dispatches=%zu shards=%zu "
                "latency{%s}\n",
                name.c_str(), cs.admitted, cs.completed, cs.dispatches,
                cs.shards, cs.latency.ToString().c_str());
    for (size_t s = 0; s < cs.shard_dispatches.size(); ++s) {
      std::printf("    shard %zu: %llu searches\n", s,
                  static_cast<unsigned long long>(cs.shard_dispatches[s]));
    }
  }

  // 7. The slow-query log: every collection retains its worst queries by
  //    total latency (traced or not) — GET /collections/<name>/slowlog on
  //    the wire, SlowLog() in process.
  for (const auto& name : service.CollectionNames()) {
    auto slowlog = service.SlowLog(name);
    if (!slowlog.ok()) continue;
    std::printf("  slowlog[%s]: %zu entries\n", name.c_str(),
                slowlog.value().size());
    for (const pdx::SlowQueryEntry& entry : slowlog.value()) {
      std::printf(
          "    #%llu %s: queue %.3fms search %.3fms total %.3fms "
          "(%llu values scanned)\n",
          static_cast<unsigned long long>(entry.id), entry.outcome.c_str(),
          entry.queue_ms, entry.search_ms, entry.total_ms,
          static_cast<unsigned long long>(entry.counters.values_scanned));
    }
  }
  // Destruction shuts down cleanly: in-flight work finishes, queued
  // queries cancel, every future resolves.
  return 0;
}
