// Sharded scatter-gather search: split one collection across N searchers
// and fan every query out to all of them, merging the per-shard top-k
// heaps into one exact global top-k.
//
//   $ ./sharded_search
//
// With an exact pruner (here PDX-BOND) the sharded searcher returns the
// same neighbors as the unsharded one over the same data — sharding buys
// parallel hardware, not a different answer. Only k-sized result lists
// cross shard boundaries, so PDX's block skipping runs intact inside each
// shard.

#include <cstdio>

#include "benchlib/datagen.h"
#include "common/timer.h"
#include "core/pdx.h"

int main() {
  // 1. A toy collection.
  pdx::SyntheticSpec spec;
  spec.name = "sharded-demo";
  spec.dim = 96;
  spec.count = 40000;
  spec.num_queries = 64;
  pdx::Dataset dataset = pdx::GenerateDataset(spec);

  pdx::SearcherConfig config;  // Defaults: flat PDX-BOND, exact search.
  config.k = 10;
  config.threads = 4;  // The sharded facade fans out on its own pool.

  // 2. Unsharded reference vs the same data split across 4 shards.
  auto reference = pdx::MakeSearcher(dataset.data, config);
  pdx::ShardingOptions sharding;
  sharding.num_shards = 4;
  sharding.assignment = pdx::ShardAssignment::kRoundRobin;
  auto sharded = pdx::MakeShardedSearcher(dataset.data, config, sharding);
  if (!reference.ok() || !sharded.ok()) {
    std::printf("construction failed\n");
    return 1;
  }
  std::printf("hosting %zu vectors on %zu shards (%s assignment)\n",
              sharded.value()->count(), sharded.value()->num_shards(),
              pdx::ShardAssignmentName(sharding.assignment));

  // 3. Parity: every query returns the same global ids either way.
  size_t mismatches = 0;
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const auto expected = reference.value()->Search(dataset.queries.Vector(q));
    const auto actual = sharded.value()->Search(dataset.queries.Vector(q));
    if (actual.size() != expected.size()) {
      ++mismatches;
      continue;
    }
    for (size_t i = 0; i < expected.size(); ++i) {
      if (actual[i].id != expected[i].id) {
        ++mismatches;
        break;
      }
    }
  }
  std::printf("parity over %zu queries: %zu mismatches\n",
              dataset.queries.count(), mismatches);

  // 4. A batch tiles (shard x query) work over the pool; per-shard fan-out
  //    counters show every shard pulled its weight.
  pdx::Timer wall;
  sharded.value()->SearchBatch(dataset.queries.data(),
                               dataset.queries.count());
  std::printf("batched %zu queries across shards in %.2f ms\n",
              dataset.queries.count(), wall.ElapsedMillis());
  const auto dispatches = sharded.value()->ShardDispatchCounts();
  for (size_t s = 0; s < dispatches.size(); ++s) {
    std::printf("  shard %zu: %llu searches\n", s,
                static_cast<unsigned long long>(dispatches[s]));
  }
  return mismatches == 0 ? 0 : 1;
}
