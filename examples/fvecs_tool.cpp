// fvecs_tool: a tiny command-line vector-search utility over .fvecs files —
// the INRIA interchange format every ANN benchmark suite uses.
//
//   fvecs_tool generate <out.fvecs> <count> <dim> [skewed]
//       Writes a synthetic collection.
//   fvecs_tool info <file.fvecs>
//       Prints count/dim and per-dimension statistics summary.
//   fvecs_tool search <data.fvecs> <queries.fvecs> <k>
//       Exact k-NN of every query via PDX-BOND; prints ids and distances.
//   fvecs_tool save <data.fvecs> <out.pdxc>
//       Builds an IVF/BOND collection and persists it in the PDXC format.
//   fvecs_tool restore-search <collection.pdxc> <queries.fvecs> <k>
//       Restores a saved collection (no k-means, no re-packing) and
//       searches it. `save` in one process + `restore-search` in another
//       is the cross-process round-trip CI exercises.
//
// Demonstrates the I/O layer (Status-based error handling) and the
// plug-and-play property of PDX-BOND: point it at raw floats and search.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "benchlib/datagen.h"
#include "core/pdx.h"
#include "core/persist.h"

namespace {

int Fail(const pdx::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Generate(const char* path, size_t count, size_t dim, bool skewed) {
  pdx::SyntheticSpec spec;
  spec.name = "generated";
  spec.dim = dim;
  spec.count = count;
  spec.num_queries = 1;
  spec.distribution = skewed ? pdx::ValueDistribution::kSkewed
                             : pdx::ValueDistribution::kNormal;
  pdx::Dataset dataset = pdx::GenerateDataset(spec);
  const pdx::Status status = pdx::WriteFvecs(path, dataset.data);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu x %zu to %s\n", count, dim, path);
  return 0;
}

int Info(const char* path) {
  pdx::Result<pdx::VectorSet> data = pdx::ReadFvecs(path);
  if (!data.ok()) return Fail(data.status());
  const pdx::VectorSet& vectors = data.value();
  std::printf("%s: %zu vectors x %zu dims\n", path, vectors.count(),
              vectors.dim());
  if (vectors.count() == 0) return 0;
  const pdx::DimensionStats stats =
      pdx::ComputeStats(vectors.data(), vectors.count(), vectors.dim());
  float mean_lo = stats.means[0];
  float mean_hi = stats.means[0];
  float var_hi = stats.variances[0];
  for (size_t d = 1; d < vectors.dim(); ++d) {
    mean_lo = std::min(mean_lo, stats.means[d]);
    mean_hi = std::max(mean_hi, stats.means[d]);
    var_hi = std::max(var_hi, stats.variances[d]);
  }
  std::printf("dimension means in [%.4f, %.4f], max variance %.4f\n",
              mean_lo, mean_hi, var_hi);
  return 0;
}

int Search(const char* data_path, const char* query_path, size_t k) {
  pdx::Result<pdx::VectorSet> data = pdx::ReadFvecs(data_path);
  if (!data.ok()) return Fail(data.status());
  pdx::Result<pdx::VectorSet> queries = pdx::ReadFvecs(query_path);
  if (!queries.ok()) return Fail(queries.status());
  if (data.value().dim() != queries.value().dim()) {
    return Fail(pdx::Status::InvalidArgument(
        "data and query dimensionality differ"));
  }

  auto searcher = pdx::MakeBondFlatSearcher(data.value());
  for (size_t q = 0; q < queries.value().count(); ++q) {
    const auto neighbors =
        searcher->Search(queries.value().Vector(q), k);
    std::printf("query %zu:", q);
    for (const pdx::Neighbor& n : neighbors) {
      std::printf(" %u:%.4f", n.id, n.distance);
    }
    std::printf("\n");
  }
  return 0;
}

int SaveCollection(const char* data_path, const char* out_path) {
  pdx::Result<pdx::VectorSet> data = pdx::ReadFvecs(data_path);
  if (!data.ok()) return Fail(data.status());
  pdx::SearcherConfig config;
  config.layout = pdx::SearcherLayout::kIvf;
  config.pruner = pdx::PrunerKind::kBond;
  config.k = 10;
  auto made = pdx::MakeSearcher(data.value(), std::move(config));
  if (!made.ok()) return Fail(made.status());
  const pdx::Status saved = made.value()->Save(out_path);
  if (!saved.ok()) return Fail(saved);
  std::printf("saved %zu x %zu to %s\n", data.value().count(),
              data.value().dim(), out_path);
  return 0;
}

int RestoreSearch(const char* collection_path, const char* query_path,
                  size_t k) {
  auto loaded = pdx::LoadCollection(collection_path);
  if (!loaded.ok()) return Fail(loaded.status());
  pdx::Result<pdx::VectorSet> queries = pdx::ReadFvecs(query_path);
  if (!queries.ok()) return Fail(queries.status());
  if (loaded.value().searcher->dim() != queries.value().dim()) {
    return Fail(pdx::Status::InvalidArgument(
        "collection and query dimensionality differ"));
  }
  if (k == 0) return Fail(pdx::Status::InvalidArgument("k must be > 0"));
  std::printf("restored %s (%s, %llu bytes)\n", collection_path,
              loaded.value().source.c_str(),
              static_cast<unsigned long long>(loaded.value().file_bytes));
  loaded.value().searcher->set_k(k);
  for (size_t q = 0; q < queries.value().count(); ++q) {
    const auto neighbors =
        loaded.value().searcher->Search(queries.value().Vector(q));
    std::printf("query %zu:", q);
    for (const pdx::Neighbor& n : neighbors) {
      std::printf(" %u:%.4f", n.id, n.distance);
    }
    std::printf("\n");
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  fvecs_tool generate <out.fvecs> <count> <dim> [skewed]\n"
               "  fvecs_tool info <file.fvecs>\n"
               "  fvecs_tool search <data.fvecs> <queries.fvecs> <k>\n"
               "  fvecs_tool save <data.fvecs> <out.pdxc>\n"
               "  fvecs_tool restore-search <collection.pdxc> "
               "<queries.fvecs> <k>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    // Without arguments, run a self-contained demo in /tmp.
    std::printf("no command given; running self-demo\n");
    const std::string base = "/tmp/pdx_fvecs_demo";
    if (Generate((base + ".fvecs").c_str(), 5000, 64, true) != 0) return 1;
    if (Generate((base + "_q.fvecs").c_str(), 3, 64, true) != 0) return 1;
    if (Info((base + ".fvecs").c_str()) != 0) return 1;
    return Search((base + ".fvecs").c_str(), (base + "_q.fvecs").c_str(), 5);
  }

  const std::string command = argv[1];
  if (command == "generate" && (argc == 5 || argc == 6)) {
    const bool skewed = argc == 6 && std::strcmp(argv[5], "skewed") == 0;
    return Generate(argv[2], std::strtoull(argv[3], nullptr, 10),
                    std::strtoull(argv[4], nullptr, 10), skewed);
  }
  if (command == "info" && argc == 3) return Info(argv[2]);
  if (command == "search" && argc == 5) {
    return Search(argv[2], argv[3], std::strtoull(argv[4], nullptr, 10));
  }
  if (command == "save" && argc == 4) return SaveCollection(argv[2], argv[3]);
  if (command == "restore-search" && argc == 5) {
    return RestoreSearch(argv[2], argv[3],
                         std::strtoull(argv[4], nullptr, 10));
  }
  Usage();
  return 2;
}
