// Frequent-ingestion scenario: a monitoring system that appends new
// embeddings continuously (Section 3 "Inserts and Updates" + the paper's
// pitch that PDX-BOND works on data "as-is").
//
// This used to rebuild the whole PDX layout after every wave. Now it
// drives the real live-collection machinery: the first wave PUTs a
// mutable collection into a SearchService, every later wave streams in
// through AddVectors — which repacks ONLY the partial tail block of the
// append delta — and a background compaction folds the delta into the
// base when it outgrows the threshold. Exactness is verified after every
// wave against an independently maintained mirror, and the delta-vs-base
// block split is printed so the "no full rebuild" claim is visible.

#include <cstdio>
#include <vector>

#include "benchlib/datagen.h"
#include "common/timer.h"
#include "core/any_searcher.h"
#include "serve/search_service.h"
#include "storage/vector_set.h"

int main() {
  const size_t dim = 96;
  const size_t wave_size = 5000;
  const size_t num_waves = 4;
  const size_t k = 10;

  pdx::SyntheticSpec spec;
  spec.name = "stream";
  spec.dim = dim;
  spec.count = wave_size * num_waves;
  spec.num_queries = 10;
  spec.distribution = pdx::ValueDistribution::kNormal;
  pdx::Dataset dataset = pdx::GenerateDataset(spec);

  pdx::ServiceConfig service_config;
  service_config.threads = 2;
  // Compact once the delta holds 8192 rows: waves are 5000, so the demo
  // crosses the threshold mid-stream and a background fold kicks in.
  service_config.mutation.compact_threshold = 8192;
  pdx::SearchService service(service_config);

  // Exact pruning (linear) keeps every wave's results byte-comparable to
  // the reference searcher below.
  pdx::SearcherConfig config;
  config.layout = pdx::SearcherLayout::kFlat;
  config.pruner = pdx::PrunerKind::kLinear;
  config.k = k;
  config.block_capacity = 2048;

  pdx::VectorSet mirror(dim);  // The oracle: same rows, fresh search.
  for (size_t wave = 0; wave < num_waves; ++wave) {
    const float* rows = dataset.data.Vector(wave * wave_size);
    pdx::Timer ingest_timer;
    if (wave == 0) {
      // First wave: host the collection (vectors are copied in).
      const pdx::VectorSet seed =
          pdx::VectorSet::FromRowMajor(rows, wave_size, dim);
      const pdx::Status added = service.AddCollection("stream", seed, config);
      if (!added.ok()) {
        std::printf("AddCollection failed: %s\n", added.ToString().c_str());
        return 1;
      }
    } else {
      // Later waves: stream through AddVectors — no rebuild, the append
      // path repacks one partial tail block per row.
      const auto added =
          service.AddVectors("stream", rows, wave_size, dim, nullptr);
      if (!added.ok()) {
        std::printf("AddVectors failed: %s\n",
                    added.status().ToString().c_str());
        return 1;
      }
    }
    const double ingest_ms = ingest_timer.ElapsedMillis();
    mirror.AppendBatch(rows, wave_size);

    // Verify exactness after ingestion against a fresh searcher over the
    // same rows (same kernels, so ids AND distances must agree).
    auto reference = pdx::MakeSearcher(mirror, config);
    if (!reference.ok()) return 1;
    size_t mismatches = 0;
    pdx::Timer search_timer;
    for (size_t q = 0; q < dataset.queries.count(); ++q) {
      const float* query = dataset.queries.Vector(q);
      const pdx::QueryResult result =
          service.Submit("stream", query).result.get();
      if (!result.status.ok()) return 1;
      const auto expected = reference.value()->Search(query);
      if (result.neighbors.size() != expected.size()) ++mismatches;
      for (size_t i = 0; i < expected.size(); ++i) {
        if (result.neighbors[i].id != expected[i].id) ++mismatches;
      }
    }
    const double search_ms =
        search_timer.ElapsedMillis() / (2.0 * dataset.queries.count());

    const pdx::ServiceStats stats = service.Stats();
    const pdx::CollectionStats& cs = stats.collections.at("stream");
    std::printf(
        "wave %zu: %6zu vectors live | ingest %7.1f ms | %.3f ms/query | "
        "blocks base %4zu + delta %3zu | tombstones %zu | compactions "
        "%llu | mismatches %zu\n",
        wave + 1, cs.count, ingest_ms, search_ms, cs.base_blocks,
        cs.delta_blocks, cs.tombstones,
        static_cast<unsigned long long>(cs.compactions), mismatches);
    if (mismatches != 0) return 1;
  }

  // In-place update, now a first-class upsert: replace id 123 with a known
  // query vector; it must become that query's exact nearest neighbor, with
  // no rebuild and no count change.
  const uint64_t id = 123;
  const auto upserted =
      service.Upsert("stream", dataset.queries.Vector(0), 1, dim, &id);
  if (!upserted.ok()) {
    std::printf("Upsert failed: %s\n", upserted.status().ToString().c_str());
    return 1;
  }
  const pdx::QueryResult nearest =
      service.Submit("stream", dataset.queries.Vector(0)).result.get();
  if (!nearest.status.ok() || nearest.neighbors.empty()) return 1;
  std::printf("after Upsert(123): 1-NN id=%u (expected 123), d2=%.6f\n",
              nearest.neighbors[0].id, nearest.neighbors[0].distance);
  return nearest.neighbors[0].id == 123 ? 0 : 1;
}
