// Frequent-ingestion scenario: a monitoring system that appends new
// embeddings continuously (Section 3 "Inserts and Updates" + the paper's
// pitch that PDX-BOND works on data "as-is").
//
// ADSampling/BSA must re-project every new vector through a D x D matrix
// (and BSA's PCA eventually drifts as the distribution shifts). PDX-BOND
// needs neither: append raw floats, rebuild the affected tail blocks, keep
// searching with zero recall loss. This demo ingests in waves, re-searches
// after each wave, and verifies exactness throughout.

#include <cstdio>
#include <vector>

#include "benchlib/datagen.h"
#include "common/timer.h"
#include "core/pdx.h"
#include "index/flat.h"

int main() {
  const size_t dim = 96;
  const size_t wave_size = 5000;
  const size_t num_waves = 4;

  pdx::SyntheticSpec spec;
  spec.name = "stream";
  spec.dim = dim;
  spec.count = wave_size * num_waves;
  spec.num_queries = 10;
  spec.distribution = pdx::ValueDistribution::kNormal;
  pdx::Dataset dataset = pdx::GenerateDataset(spec);

  pdx::VectorSet live(dim);
  for (size_t wave = 0; wave < num_waves; ++wave) {
    // Ingest the next wave: plain memcpy of raw floats, no transformation.
    pdx::Timer ingest_timer;
    live.AppendBatch(dataset.data.Vector(wave * wave_size),
                     wave_size);
    // Rebuild the PDX layout snapshot (copy-on-write style rebuild; a
    // production system would only re-pack the tail block).
    pdx::BondConfig config = pdx::DefaultFlatBondConfig();
    config.block_capacity = 2048;
    auto searcher = pdx::MakeBondFlatSearcher(live, config);
    const double ingest_ms = ingest_timer.ElapsedMillis();

    // Verify exactness after ingestion.
    size_t mismatches = 0;
    pdx::Timer search_timer;
    for (size_t q = 0; q < dataset.queries.count(); ++q) {
      const float* query = dataset.queries.Vector(q);
      const auto result = searcher->Search(query, 10);
      const auto expected =
          pdx::FlatSearchNary(live, query, 10, pdx::Metric::kL2);
      for (size_t i = 0; i < expected.size(); ++i) {
        if (result[i].id != expected[i].id) ++mismatches;
      }
    }
    const double search_ms =
        search_timer.ElapsedMillis() / (2.0 * dataset.queries.count());

    std::printf(
        "wave %zu: %6zu vectors live | ingest+repack %7.1f ms | "
        "%.3f ms/query | mismatches %zu\n",
        wave + 1, live.count(), ingest_ms, search_ms, mismatches);
    if (mismatches != 0) return 1;
  }

  // In-place update: overwrite one vector with a known query; it must
  // become that query's exact nearest neighbor after re-packing.
  live.Update(123, dataset.queries.Vector(0));
  auto searcher = pdx::MakeBondFlatSearcher(live);
  const auto result = searcher->Search(dataset.queries.Vector(0), 1);
  std::printf("after Update(123): 1-NN id=%u (expected 123), d2=%.6f\n",
              result[0].id, result[0].distance);
  return result[0].id == 123 ? 0 : 1;
}
