// Quickstart: store vectors in the PDX layout and run an exact k-NN search
// with PDX-BOND — no preprocessing, no index, no recall loss.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the library: generate a toy
// embedding collection, build a searcher through the runtime facade, and
// query it one query at a time and as a batch.

#include <cstdio>

#include "benchlib/datagen.h"
#include "core/pdx.h"

int main() {
  // 1. A toy collection: 20,000 vectors of 128 dims (SIFT-like shape).
  pdx::SyntheticSpec spec;
  spec.name = "quickstart";
  spec.dim = 128;
  spec.count = 20000;
  spec.num_queries = 3;
  spec.distribution = pdx::ValueDistribution::kSkewed;
  pdx::Dataset dataset = pdx::GenerateDataset(spec);
  std::printf("collection: %zu vectors x %zu dims\n", dataset.data.count(),
              dataset.dim());

  // 2. Build a searcher straight from the raw floats. The default config is
  //    flat PDX-BOND: vectors are transposed into dimension-major PDX
  //    blocks, per-dimension statistics drive the query-aware dimension
  //    ordering, and no transformation touches the data.
  pdx::SearcherConfig config;
  config.k = 5;
  auto made = pdx::MakeSearcher(dataset.data, config);
  if (!made.ok()) {
    std::printf("MakeSearcher failed: %s\n", made.status().ToString().c_str());
    return 1;
  }
  auto searcher = std::move(made).value();
  std::printf("searcher: %s layout, %s pruner, %zu PDX blocks\n",
              pdx::SearcherLayoutName(searcher->options().layout),
              pdx::PrunerKindName(searcher->options().pruner),
              searcher->store().num_blocks());

  // 3. Query. Results are exact (identical to brute force), but most
  //    dimension values are never touched thanks to pruning.
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const auto neighbors = searcher->Search(dataset.queries.Vector(q));
    const auto& profile = searcher->last_profile();
    std::printf("query %zu: ", q);
    for (const pdx::Neighbor& n : neighbors) {
      std::printf("(id=%u, d2=%.3f) ", n.id, n.distance);
    }
    std::printf("| pruned %.1f%% of values\n",
                100.0 * profile.pruning_power());
  }

  // 4. The same queries as one batched call — the serving-path API. With
  //    config.threads > 1 the batch fans out over a persistent thread pool
  //    and still returns exactly the sequential results.
  searcher->set_threads(2);
  const auto batch =
      searcher->SearchBatch(dataset.queries.data(), dataset.queries.count());
  const pdx::BatchProfile& bp = searcher->last_batch_profile();
  std::printf("batch: %zu queries in %.2f ms (%.0f QPS), pruned %.1f%%\n",
              bp.queries, bp.wall_ms, bp.qps(), 100.0 * bp.pruning_power());
  return batch.size() == dataset.queries.count() ? 0 : 1;
}
