// Quickstart: store vectors in the PDX layout and run an exact k-NN search
// with PDX-BOND — no preprocessing, no index, no recall loss.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the library: generate a toy
// embedding collection, build a flat PDX-BOND searcher, and query it.

#include <cstdio>

#include "benchlib/datagen.h"
#include "core/pdx.h"

int main() {
  // 1. A toy collection: 20,000 vectors of 128 dims (SIFT-like shape).
  pdx::SyntheticSpec spec;
  spec.name = "quickstart";
  spec.dim = 128;
  spec.count = 20000;
  spec.num_queries = 3;
  spec.distribution = pdx::ValueDistribution::kSkewed;
  pdx::Dataset dataset = pdx::GenerateDataset(spec);
  std::printf("collection: %zu vectors x %zu dims\n", dataset.data.count(),
              dataset.dim());

  // 2. Build a PDX-BOND searcher straight from the raw floats. Vectors are
  //    transposed into dimension-major PDX blocks; per-dimension statistics
  //    are collected for the query-aware dimension ordering.
  auto searcher = pdx::MakeBondFlatSearcher(dataset.data);
  std::printf("PDX store: %zu blocks, block capacity %zu\n",
              searcher->store().num_blocks(),
              pdx::kExactSearchBlockCapacity);

  // 3. Query. Results are exact (identical to brute force), but most
  //    dimension values are never touched thanks to pruning.
  for (size_t q = 0; q < dataset.queries.count(); ++q) {
    const auto neighbors = searcher->Search(dataset.queries.Vector(q), 5);
    const auto& profile = searcher->last_profile();
    std::printf("query %zu: ", q);
    for (const pdx::Neighbor& n : neighbors) {
      std::printf("(id=%u, d2=%.3f) ", n.id, n.distance);
    }
    std::printf("| pruned %.1f%% of values\n",
                100.0 * profile.pruning_power());
  }
  return 0;
}
