// Approximate-search scenario: a RAG-style retrieval service over LLM text
// embeddings (768 dims, the paper's Contriever/arXiv shape).
//
// The service trades a little recall for large speedups: an IVF index
// narrows the search to a few buckets, and ADSampling + PDXearch prunes
// most dimension values inside them. Both searchers are built through the
// runtime facade over ONE shared index; the example sweeps nprobe, prints
// the recall/QPS frontier, then serves the whole query set as a
// multi-threaded batch — the "heavy traffic" path.

#include <cstdio>
#include <utility>
#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/recall.h"
#include "core/pdx.h"

int main() {
  pdx::SyntheticSpec spec;
  spec.name = "rag";
  spec.dim = 768;
  spec.count = 12000;
  spec.num_queries = 30;
  spec.distribution = pdx::ValueDistribution::kNormal;
  pdx::Dataset dataset = pdx::GenerateDataset(spec);
  const size_t k = 10;

  std::printf("building IVF index over %zu x %zu ...\n",
              dataset.data.count(), dataset.dim());
  pdx::IvfIndex index = pdx::IvfIndex::Build(dataset.data, {});
  std::printf("  %zu buckets\n", index.num_buckets());

  std::printf("preprocessing (ADSampling rotation, PDX layout) ...\n");
  pdx::SearcherConfig config;
  config.layout = pdx::SearcherLayout::kIvf;
  config.k = k;
  config.pruner = pdx::PrunerKind::kAdsampling;
  auto ads = pdx::MakeSearcher(dataset.data, index, config).value();
  config.pruner = pdx::PrunerKind::kBond;  // The "no preprocessing" option.
  auto bond = pdx::MakeSearcher(dataset.data, index, config).value();
  const auto truth =
      pdx::ComputeGroundTruth(dataset.data, dataset.queries, k);

  std::printf("\n%8s %12s %12s %12s %12s\n", "nprobe", "ADS recall",
              "ADS QPS", "BOND recall", "BOND QPS");
  for (size_t nprobe : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    if (nprobe > index.num_buckets()) break;

    // Sequential batches (threads = 1): per-query latency methodology.
    auto sweep = [&](pdx::Searcher& searcher) {
      searcher.set_nprobe(nprobe);
      const auto results = searcher.SearchBatch(dataset.queries.data(),
                                                dataset.queries.count());
      return std::make_pair(pdx::MeanRecallAtK(results, truth, k),
                            searcher.last_batch_profile().qps());
    };

    const auto [ads_recall, ads_qps] = sweep(*ads);
    const auto [bond_recall, bond_qps] = sweep(*bond);
    std::printf("%8zu %12.3f %12.0f %12.3f %12.0f\n", nprobe, ads_recall,
                ads_qps, bond_recall, bond_qps);
  }

  // Serving mode: same API, multiple workers per batch.
  ads->set_nprobe(16);
  for (size_t threads : {1u, 4u}) {
    ads->set_threads(threads);
    ads->SearchBatch(dataset.queries.data(), dataset.queries.count());
    std::printf("\nbatched ADS @ nprobe=16, threads=%zu: %.2f ms wall "
                "(%.0f QPS)",
                threads, ads->last_batch_profile().wall_ms,
                ads->last_batch_profile().qps());
  }
  std::printf(
      "\n\nNote: PDX-BOND recall == recall of the probed buckets (exact "
      "within them); ADSampling adds probabilistic dimension pruning on "
      "top.\n");
  return 0;
}
