// Approximate-search scenario: a RAG-style retrieval service over LLM text
// embeddings (768 dims, the paper's Contriever/arXiv shape).
//
// The service trades a little recall for large speedups: an IVF index
// narrows the search to a few buckets, and ADSampling + PDXearch prunes
// most dimension values inside them. This example sweeps nprobe and prints
// the recall/QPS frontier, plus PDX-BOND as the "no preprocessing" option.

#include <cstdio>
#include <vector>

#include "benchlib/datagen.h"
#include "benchlib/recall.h"
#include "common/timer.h"
#include "core/pdx.h"

int main() {
  pdx::SyntheticSpec spec;
  spec.name = "rag";
  spec.dim = 768;
  spec.count = 12000;
  spec.num_queries = 30;
  spec.distribution = pdx::ValueDistribution::kNormal;
  pdx::Dataset dataset = pdx::GenerateDataset(spec);
  const size_t k = 10;

  std::printf("building IVF index over %zu x %zu ...\n",
              dataset.data.count(), dataset.dim());
  pdx::IvfIndex index = pdx::IvfIndex::Build(dataset.data, {});
  std::printf("  %zu buckets\n", index.num_buckets());

  std::printf("preprocessing (ADSampling rotation, PDX layout) ...\n");
  auto ads = pdx::MakeAdsIvfSearcher(dataset.data, index, {});
  auto bond = pdx::MakeBondIvfSearcher(dataset.data, index, {});
  const auto truth =
      pdx::ComputeGroundTruth(dataset.data, dataset.queries, k);

  std::printf("\n%8s %12s %12s %12s %12s\n", "nprobe", "ADS recall",
              "ADS QPS", "BOND recall", "BOND QPS");
  for (size_t nprobe : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    if (nprobe > index.num_buckets()) break;

    auto sweep = [&](auto& searcher) {
      std::vector<std::vector<pdx::Neighbor>> results;
      pdx::Timer timer;
      for (size_t q = 0; q < dataset.queries.count(); ++q) {
        results.push_back(
            searcher->Search(dataset.queries.Vector(q), k, nprobe));
      }
      const double seconds = timer.ElapsedSeconds();
      return std::make_pair(pdx::MeanRecallAtK(results, truth, k),
                            dataset.queries.count() / seconds);
    };

    const auto [ads_recall, ads_qps] = sweep(ads);
    const auto [bond_recall, bond_qps] = sweep(bond);
    std::printf("%8zu %12.3f %12.0f %12.3f %12.0f\n", nprobe, ads_recall,
                ads_qps, bond_recall, bond_qps);
  }
  std::printf(
      "\nNote: PDX-BOND recall == recall of the probed buckets (exact "
      "within them); ADSampling adds probabilistic dimension pruning on "
      "top.\n");
  return 0;
}
