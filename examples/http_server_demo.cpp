// HTTP wire front end demo: hosts two collections (one IVF/BOND, one
// sharded flat/BOND) behind the REST API and speaks to itself over a real
// socket, printing the transcript as equivalent curl commands.
//
//   ./http_server_demo                 # self-test transcript, then exit
//   ./http_server_demo --serve         # keep serving until stdin closes
//   ./http_server_demo --port=8080     # fixed port (default: ephemeral)
//
// While serving, from another terminal (replace $PORT):
//
//   curl http://127.0.0.1:$PORT/healthz
//   curl -X PUT http://127.0.0.1:$PORT/collections/mine \
//        -d '{"vectors": [[0.1, 0.2], [0.3, 0.4]], "layout": "flat"}'
//   curl -X POST http://127.0.0.1:$PORT/collections/mine/search \
//        -d '{"query": [0.1, 0.2], "k": 1}'
//   curl http://127.0.0.1:$PORT/stats
//   curl -X DELETE http://127.0.0.1:$PORT/collections/mine

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "benchlib/datagen.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/search_handler.h"
#include "serve/search_service.h"

using namespace pdx;

namespace {

void Curl(HttpClient& client, const std::string& method,
          const std::string& target, const std::string& body = "") {
  std::printf("$ curl -s%s http://127.0.0.1:PORT%s%s%s%s\n",
              method == "GET" ? "" : (" -X " + method).c_str(), target.c_str(),
              body.empty() ? "" : " -d '", body.c_str(),
              body.empty() ? "" : "'");
  Result<HttpResponse> response = client.Roundtrip(method, target, body);
  if (!response.ok()) {
    std::printf("  (transport error: %s)\n",
                response.status().ToString().c_str());
    return;
  }
  std::string shown = response.value().body;
  if (shown.size() > 400) shown = shown.substr(0, 400) + "...";
  std::printf("  HTTP %d  %s\n\n", response.value().status, shown.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::atoi(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    }
  }

  // A small synthetic workload (same generator as the tests/benches).
  SyntheticSpec spec;
  spec.name = "http-demo";
  spec.dim = 32;
  spec.count = 20000;
  spec.num_queries = 4;
  spec.num_clusters = 32;
  spec.seed = 7;
  spec.distribution = ValueDistribution::kNormal;
  Dataset data = GenerateDataset(spec);

  ServiceConfig service_config;
  service_config.threads = 0;  // One worker per hardware thread.
  SearchService service(service_config);

  SearcherConfig ivf;
  ivf.layout = SearcherLayout::kIvf;
  ivf.pruner = PrunerKind::kBond;
  ivf.nprobe = 8;
  Status added = service.AddCollection("demo", data.data, ivf);
  if (!added.ok()) {
    std::fprintf(stderr, "AddCollection: %s\n", added.ToString().c_str());
    return 1;
  }
  ShardingOptions sharding;
  sharding.num_shards = 4;
  SearcherConfig flat;  // flat / bond defaults
  added = service.AddCollection("sharded", data.data, flat, sharding);
  if (!added.ok()) {
    std::fprintf(stderr, "AddCollection: %s\n", added.ToString().c_str());
    return 1;
  }

  SearchHandler handler(service);
  HttpServerConfig server_config;
  server_config.port = port;
  HttpServer server(server_config);
  Status started = server.Start(handler.AsHttpHandler());
  if (!started.ok()) {
    std::fprintf(stderr, "Start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("pdx wire front end listening on http://127.0.0.1:%u\n",
              server.port());
  std::printf("hosting: demo (ivf/bond, %zu vectors), sharded (flat/bond x%zu"
              " shards)\n\n",
              data.data.count(), sharding.num_shards);

  // Self-test transcript: the demo is its own first client.
  HttpClient client;
  Status connected = client.Connect("127.0.0.1", server.port());
  if (!connected.ok()) {
    std::fprintf(stderr, "Connect: %s\n", connected.ToString().c_str());
    return 1;
  }
  Curl(client, "GET", "/healthz");
  Curl(client, "GET", "/collections");
  Curl(client, "GET", "/collections/demo");

  JsonValue query = JsonValue::Object();
  JsonValue values = JsonValue::Array();
  for (size_t d = 0; d < data.queries.dim(); ++d) {
    values.Append(static_cast<double>(data.queries.Vector(0)[d]));
  }
  query.Set("query", std::move(values));
  query.Set("k", static_cast<size_t>(5));
  const std::string search_body = WriteJson(query);
  Curl(client, "POST", "/collections/demo/search", search_body);
  Curl(client, "POST", "/collections/sharded/search", search_body);

  // A tiny PUT + DELETE round trip.
  Curl(client, "PUT", "/collections/mine",
       "{\"vectors\": [[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]], "
       "\"layout\": \"flat\", \"k\": 2}");
  Curl(client, "POST", "/collections/mine/search",
       "{\"query\": [0.1, 0.2], \"k\": 1}");
  Curl(client, "DELETE", "/collections/mine");

  // The error mappings, live.
  Curl(client, "POST", "/collections/ghost/search", search_body);
  Curl(client, "POST", "/collections/demo/search", "{\"query\": [1, 2,");

  Curl(client, "GET", "/stats");

  if (serve) {
    std::printf("serving — press Enter (or close stdin) to stop\n");
    std::getchar();
  }
  server.Stop();
  service.Shutdown();
  std::printf("done\n");
  return 0;
}
